"""Workload builders: request streams with pre-drawn dynamics.

Requests carry their per-stage :class:`InvocationDynamics` so that all
policies replay identical randomness (common random numbers) — the paper's
evaluation likewise serves the same 1000 requests to every system.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..rng import RngFactory
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .arrivals import (
    azure_like_arrivals,
    burst_arrivals,
    constant_arrivals,
    poisson_arrivals,
    storm_arrivals,
)
from .diurnal import DiurnalRate, FlashCrowdRate, nhpp_arrivals
from .trace_file import cached_trace, replay_arrivals

__all__ = [
    "ArrivalSpec",
    "WorkloadConfig",
    "generate_requests",
    "iter_requests",
    "shifted_workload",
]

InterferenceDraw = _t.Callable[[np.random.Generator], float]

#: Arrival processes an :class:`ArrivalSpec` can name.
ARRIVAL_KINDS = (
    "constant", "poisson", "burst", "azure", "diurnal", "replay", "storm",
)


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative arrival process — picklable, hashable, seed-free.

    The spec carries only the process *shape*; randomness comes from the
    generator passed to :meth:`timestamps`, so the same spec replays
    identically under a derived per-scenario RNG (the contract the sweep
    engine's bit-reproducibility rests on).

    ``kind`` is one of ``constant`` (fixed ``interval_ms`` spacing),
    ``poisson`` (exponential gaps at ``rate_per_s``), ``burst`` (two-phase
    Poisson mixing ``rate_per_s`` with ``burst_rate_per_s`` at
    ``burst_fraction``), ``azure`` (heavy-tailed lognormal gaps with
    log-std ``sigma`` replaying the Azure-trace shape), ``diurnal`` (a
    non-homogeneous Poisson process on a sinusoidal day/night rate curve:
    mean ``rate_per_s``, relative swing ``amplitude``, cycle ``period_s``),
    ``replay`` (arrivals read verbatim from the trace file at
    ``trace`` — the one kind that consumes no randomness), or ``storm``
    (a flash crowd: the diurnal curve with its rate multiplied by
    ``storm_multiplier`` during ``storm_fraction`` of every period,
    centred on the peak — the cold-start-storm scenario; ``amplitude = 0``
    storms a flat Poisson base).
    """

    kind: str = "constant"
    rate_per_s: float = 10.0
    interval_ms: float = 0.0
    burst_rate_per_s: float | None = None
    burst_fraction: float = 0.1
    sigma: float = 1.5
    #: Diurnal shape: relative swing in [0, 1] (1 dips to zero at the
    #: trough), the cycle length in seconds, and the phase offset in
    #: radians (fleet regions shift their local busy hour with it; 0 for
    #: every pre-fleet spec, and folded into labels/digests only when
    #: nonzero so existing seeds and cache keys are untouched).
    amplitude: float = 0.6
    period_s: float = 60.0
    phase: float = 0.0
    #: Replay source: path to a trace file readable by
    #: :func:`~repro.traces.trace_file.load_trace`. The file is read at
    #: draw time (and memoised per content), so workers replay whatever
    #: the file holds when the cell runs.
    trace: str | None = None
    #: Flash-crowd shape (storm kind): rate multiplier inside the storm
    #: window and the window's width as a fraction of the period.
    storm_multiplier: float = 6.0
    storm_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise TraceError(
                f"unknown arrival kind {self.kind!r}; known: {ARRIVAL_KINDS}"
            )
        # Shape parameters are validated here — not first at draw time — so
        # a bad spec fails when the matrix is built, not mid-sweep inside a
        # pool worker after the profiling campaign already ran. Only the
        # fields the kind actually consumes are checked.
        if self.kind == "constant":
            if self.interval_ms < 0:
                raise TraceError(
                    f"interval must be >= 0, got {self.interval_ms}"
                )
        elif self.kind != "replay" and self.rate_per_s <= 0:
            raise TraceError(f"rate must be > 0, got {self.rate_per_s}")
        if self.kind == "burst":
            if self.burst_rate_per_s is not None and self.burst_rate_per_s <= 0:
                raise TraceError(
                    f"burst rate must be > 0, got {self.burst_rate_per_s}"
                )
            if not 0.0 <= self.burst_fraction <= 1.0:
                raise TraceError(
                    f"burst fraction must be in [0, 1]: {self.burst_fraction}"
                )
        if self.kind == "azure" and self.sigma < 0:
            raise TraceError(f"sigma must be >= 0, got {self.sigma}")
        if self.kind == "diurnal":
            # Delegated construction validates amplitude/period/phase
            # alongside the rate, at spec-build time as for the other kinds.
            DiurnalRate.sinusoid(
                self.rate_per_s, self.amplitude, self.period_s, self.phase
            )
        if self.kind == "replay" and not self.trace:
            raise TraceError(
                "replay arrivals require trace=<path to a trace file>"
            )
        if self.kind == "storm":
            # Delegated construction validates the base curve and the storm
            # window alongside it, at spec-build time as for the others.
            FlashCrowdRate(
                DiurnalRate.sinusoid(
                    self.rate_per_s, self.amplitude, self.period_s, self.phase
                ),
                self.storm_multiplier,
                self.storm_fraction,
            )

    @property
    def label(self) -> str:
        """Stable human-readable identifier (also used for seed derivation)."""
        if self.kind == "constant":
            return f"constant@{self.interval_ms:g}ms"
        if self.kind == "poisson":
            return f"poisson@{self.rate_per_s:g}/s"
        if self.kind == "burst":
            burst_rate = (
                self.burst_rate_per_s
                if self.burst_rate_per_s is not None
                else 10.0 * self.rate_per_s
            )
            return (
                f"burst@{self.rate_per_s:g}/s+{burst_rate:g}/s"
                f"@{self.burst_fraction:g}"
            )
        if self.kind == "diurnal":
            return (
                f"diurnal@{self.rate_per_s:g}/s~{self.amplitude:g}"
                f"x{self.period_s:g}s" + self._phase_suffix
            )
        if self.kind == "replay":
            # The path as given, not its content digest: the label keys
            # seed derivation and cell identifiers, and an edited trace
            # must keep the cell's dynamics streams (common random
            # numbers) while the cache key — which folds the content
            # digest in separately — goes cold.
            return f"replay@{self.trace}"
        if self.kind == "storm":
            return (
                f"storm@{self.rate_per_s:g}/s"
                f"x{self.storm_multiplier:g}@{self.storm_fraction:g}"
                f"~{self.amplitude:g}x{self.period_s:g}s" + self._phase_suffix
            )
        return f"azure@{self.rate_per_s:g}/s~{self.sigma:g}"

    @property
    def _phase_suffix(self) -> str:
        # Empty at phase 0 so every pre-fleet label (and the seeds derived
        # from it) is byte-for-byte what it always was.
        return f"+{self.phase:g}rad" if self.phase != 0.0 else ""

    def timestamps(
        self,
        n: int,
        rng: np.random.Generator,
        workflow: str | None = None,
    ) -> np.ndarray:
        """``n`` arrival timestamps (ms) drawn from this process.

        ``workflow`` only matters for ``replay`` specs: a trace carrying
        per-record workflow attribution replays the named workflow's
        sub-stream (its share of the recorded popularity mix), an
        unattributed trace replays the full stream.
        """
        if self.kind == "constant":
            return constant_arrivals(self.interval_ms, n)
        if self.kind == "poisson":
            return poisson_arrivals(self.rate_per_s, n, rng)
        if self.kind == "burst":
            burst_rate = (
                self.burst_rate_per_s
                if self.burst_rate_per_s is not None
                else 10.0 * self.rate_per_s
            )
            return burst_arrivals(
                self.rate_per_s, burst_rate, self.burst_fraction, n, rng
            )
        if self.kind == "diurnal":
            curve = DiurnalRate.sinusoid(
                self.rate_per_s, self.amplitude, self.period_s, self.phase
            )
            return nhpp_arrivals(curve, n, rng)
        if self.kind == "replay":
            assert self.trace is not None  # __post_init__ guarantees it
            return replay_arrivals(cached_trace(self.trace), n, workflow)
        if self.kind == "storm":
            return storm_arrivals(
                self.rate_per_s,
                self.storm_multiplier,
                self.storm_fraction,
                n,
                rng,
                amplitude=self.amplitude,
                period_s=self.period_s,
                phase=self.phase,
            )
        return azure_like_arrivals(self.rate_per_s, n, rng, sigma=self.sigma)


class WorkloadConfig:
    """Parameters of a request stream.

    ``interference`` optionally draws a per-stage slowdown factor (>= 1),
    modelling co-location effects in the trace-driven (analytic) backend;
    the cluster backend derives interference from actual co-location instead.
    ``workset_scale`` multiplies every drawn working set — used to shift the
    runtime distribution away from the profiled one (the hints-regeneration
    experiment).
    """

    def __init__(
        self,
        n_requests: int = 1000,
        arrival_rate_per_s: float | None = None,
        interference: InterferenceDraw | None = None,
        workset_scale: float = 1.0,
        slo_ms: Milliseconds | None = None,
        concurrency: int | None = None,
        arrival: ArrivalSpec | None = None,
    ) -> None:
        if n_requests <= 0:
            raise TraceError(f"n_requests must be > 0, got {n_requests}")
        if workset_scale <= 0:
            raise TraceError(f"workset_scale must be > 0, got {workset_scale}")
        if arrival is not None and arrival_rate_per_s is not None:
            raise TraceError(
                "pass either an ArrivalSpec or the legacy arrival_rate_per_s, "
                "not both"
            )
        self.n_requests = int(n_requests)
        self.arrival_rate_per_s = arrival_rate_per_s
        self.interference = interference
        self.workset_scale = float(workset_scale)
        self.slo_ms = slo_ms
        self.concurrency = concurrency
        self.arrival = arrival

    def arrival_spec(self) -> ArrivalSpec:
        """The effective arrival process (legacy rate maps to Poisson)."""
        if self.arrival is not None:
            return self.arrival
        if self.arrival_rate_per_s is not None:
            return ArrivalSpec(kind="poisson", rate_per_s=self.arrival_rate_per_s)
        return ArrivalSpec(kind="constant", interval_ms=0.0)


def iter_requests(
    workflow: Workflow,
    config: WorkloadConfig | None = None,
    seed: int = 0,
) -> _t.Iterator[WorkflowRequest]:
    """Yield the deterministic request stream one request at a time.

    Identical draws (and thus identical requests) to
    :func:`generate_requests` — the arrivals array is still drawn in one
    batch (O(n) floats, the cheap part) but the per-request dynamics and
    request objects are produced lazily, so streaming consumers (the
    serving loop, streaming sweep cells) never hold the full stream.
    """
    cfg = config or WorkloadConfig()
    factory = RngFactory(seed).fork("workload", workflow.name)
    arrival_rng = factory.stream("arrivals")
    arrivals = cfg.arrival_spec().timestamps(
        cfg.n_requests, arrival_rng, workflow=workflow.name
    )
    slo = float(cfg.slo_ms if cfg.slo_ms is not None else workflow.slo_ms)
    concurrency = int(
        cfg.concurrency if cfg.concurrency is not None else workflow.max_concurrency
    )

    # All DAG nodes get dynamics (branching workflows execute
    # off-critical-path functions too).
    stage_rngs = {
        name: factory.stream("dynamics", name) for name in workflow.dag.nodes
    }
    interference_rng = factory.stream("interference")

    for i in range(cfg.n_requests):
        dynamics = {}
        for name in workflow.dag.nodes:
            model = workflow.model(name)
            q = (
                cfg.interference(interference_rng)
                if cfg.interference is not None
                else 1.0
            )
            dyn = model.sample_dynamics(stage_rngs[name], interference=q)
            if cfg.workset_scale != 1.0:
                dyn = type(dyn)(
                    workset=dyn.workset * cfg.workset_scale,
                    noise_z=dyn.noise_z,
                    interference=dyn.interference,
                )
            dynamics[name] = dyn
        yield WorkflowRequest(
            request_id=i,
            arrival_ms=float(arrivals[i]),
            slo_ms=slo,
            stage_dynamics=dynamics,
            concurrency=concurrency,
            workflow=workflow.name,
        )


def generate_requests(
    workflow: Workflow,
    config: WorkloadConfig | None = None,
    seed: int = 0,
) -> list[WorkflowRequest]:
    """Build a deterministic request stream for ``workflow``."""
    return list(iter_requests(workflow, config, seed))


def shifted_workload(
    workflow: Workflow,
    n_requests: int,
    workset_scale: float,
    seed: int = 0,
) -> list[WorkflowRequest]:
    """A workload whose inputs drifted from the profiled distribution.

    Used to provoke hint-table misses and exercise the supervisor's
    regeneration loop (paper §III-D).
    """
    return generate_requests(
        workflow,
        WorkloadConfig(n_requests=n_requests, workset_scale=workset_scale),
        seed=seed,
    )
