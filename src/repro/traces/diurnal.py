"""Time-varying arrival rates: diurnal curves and the NHPP sampler.

Production serverless traffic is not stationary — the Azure Functions
trace behind the paper's Fig. 1a shows pronounced diurnal rate swings on
top of its Zipf popularity skew. This module models the rate side:

* :class:`DiurnalRate` — a deterministic rate curve ``rate(t)`` in
  requests/s, either sinusoidal (one smooth day/night swing) or
  piecewise-constant (explicit step schedule), both periodic.
* :func:`nhpp_arrivals` — samples a non-homogeneous Poisson process from
  any such curve by Lewis–Shedler thinning: candidates are drawn from a
  homogeneous process at the peak rate and accepted with probability
  ``rate(t) / peak``. The chunked loop consumes the generator in a
  deterministic order, so a fixed seed replays bit-identically — the
  contract every sweep arrival process must honour.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceError

__all__ = ["RateCurve", "DiurnalRate", "FlashCrowdRate", "nhpp_arrivals"]


@_t.runtime_checkable
class RateCurve(_t.Protocol):
    """The shared surface of every periodic arrival-rate curve.

    :class:`DiurnalRate` and :class:`FlashCrowdRate` both satisfy it, so
    anything sampling arrivals (:func:`nhpp_arrivals`, fleet region
    sources) can accept either — or any future curve — without caring
    which. ``period_s`` may be a plain attribute or a property.
    """

    @property
    def period_s(self) -> float: ...

    def rate_at(self, t_s: "np.ndarray | float") -> np.ndarray: ...

    @property
    def peak_rate(self) -> float: ...


@dataclass(frozen=True)
class DiurnalRate:
    """A periodic arrival-rate curve ``rate(t_s)`` in requests/s.

    Build via :meth:`sinusoid` or :meth:`piecewise`; both wrap with period
    ``period_s`` so a cell can span any number of cycles.
    """

    kind: str
    period_s: float
    #: Sinusoid parameters (ignored for piecewise curves).
    base_rate_per_s: float = 0.0
    amplitude: float = 0.0
    phase: float = 0.0
    #: Piecewise steps ``((t0_s, rate0), (t1_s, rate1), ...)`` with
    #: ``t0 == 0`` and strictly ascending times below ``period_s``; each
    #: rate holds until the next breakpoint (the last until wrap-around).
    points: tuple[tuple[float, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ("sinusoid", "piecewise"):
            raise TraceError(f"unknown rate-curve kind {self.kind!r}")
        if self.period_s <= 0:
            raise TraceError(f"period must be > 0, got {self.period_s}")
        if self.kind == "sinusoid":
            if self.base_rate_per_s <= 0:
                raise TraceError(
                    f"base rate must be > 0, got {self.base_rate_per_s}"
                )
            if not 0.0 <= self.amplitude <= 1.0:
                # Amplitude is relative: 1.0 dips to zero at the trough.
                raise TraceError(
                    f"amplitude must be in [0, 1], got {self.amplitude}"
                )
        else:
            if not self.points:
                raise TraceError("piecewise curve requires >= 1 breakpoint")
            times = [t for t, _ in self.points]
            rates = [r for _, r in self.points]
            if times[0] != 0.0:
                raise TraceError(
                    f"first breakpoint must start at t=0, got {times[0]}"
                )
            if any(b <= a for a, b in zip(times, times[1:])):
                raise TraceError(f"breakpoint times must ascend: {times}")
            if times[-1] >= self.period_s:
                raise TraceError(
                    f"breakpoints must lie below the period "
                    f"({times[-1]} >= {self.period_s})"
                )
            if any(r < 0 for r in rates) or max(rates) <= 0:
                raise TraceError(
                    f"rates must be >= 0 with a positive peak: {rates}"
                )

    # -- constructors -------------------------------------------------------
    @classmethod
    def sinusoid(
        cls,
        base_rate_per_s: float,
        amplitude: float = 0.6,
        period_s: float = 3600.0,
        phase: float = 0.0,
    ) -> "DiurnalRate":
        """``base * (1 + amplitude * sin(2*pi*t/period + phase))``."""
        return cls(
            kind="sinusoid",
            period_s=float(period_s),
            base_rate_per_s=float(base_rate_per_s),
            amplitude=float(amplitude),
            phase=float(phase),
        )

    @classmethod
    def piecewise(
        cls,
        points: _t.Sequence[tuple[float, float]],
        period_s: float | None = None,
    ) -> "DiurnalRate":
        """Step schedule; the period defaults to twice the last breakpoint.

        With ``points=((0, 10), (300, 80))`` and ``period_s=600`` the rate
        is 10/s for the first five minutes of every ten, 80/s after.
        """
        pts = tuple((float(t), float(r)) for t, r in points)
        if period_s is None:
            period_s = 2.0 * pts[-1][0] if len(pts) > 1 else 1.0
        return cls(kind="piecewise", period_s=float(period_s), points=pts)

    # -- evaluation ---------------------------------------------------------
    def rate_at(self, t_s: "np.ndarray | float") -> np.ndarray:
        """Instantaneous rate (requests/s) at time(s) ``t_s`` (vectorised)."""
        t = np.asarray(t_s, dtype=np.float64)
        if self.kind == "sinusoid":
            return self.base_rate_per_s * (
                1.0
                + self.amplitude
                * np.sin(2.0 * np.pi * t / self.period_s + self.phase)
            )
        wrapped = np.mod(t, self.period_s)
        times = np.array([p[0] for p in self.points])
        rates = np.array([p[1] for p in self.points])
        idx = np.searchsorted(times, wrapped, side="right") - 1
        return rates[idx]

    @property
    def peak_rate(self) -> float:
        """The curve's maximum rate — the thinning envelope."""
        if self.kind == "sinusoid":
            return self.base_rate_per_s * (1.0 + self.amplitude)
        return max(r for _, r in self.points)

    @property
    def mean_rate(self) -> float:
        """Time-averaged rate over one period."""
        if self.kind == "sinusoid":
            return self.base_rate_per_s  # the sine integrates to zero
        times = [p[0] for p in self.points] + [self.period_s]
        spans = np.diff(times)
        rates = np.array([p[1] for p in self.points])
        return float(np.dot(spans, rates) / self.period_s)

    def peak_time_s(self) -> float:
        """Where the curve peaks within one period (analytic, no search)."""
        if self.kind == "sinusoid":
            # sin(2*pi*t/P + phase) = 1  =>  t = P * (pi/2 - phase) / 2*pi
            return float(
                (self.period_s * (0.5 * np.pi - self.phase) / (2.0 * np.pi))
                % self.period_s
            )
        t_max, _ = max(self.points, key=lambda p: p[1])
        return float(t_max)


@dataclass(frozen=True)
class FlashCrowdRate:
    """A rate curve with a flash-crowd window around its daily peak.

    Models the cold-start-storm scenario: traffic follows ``base``, except
    during a window of ``window_fraction`` of the period centred on the
    base curve's peak, where the rate is multiplied by ``multiplier`` —
    a viral event landing on top of the busy hour. The window repeats
    every period. Both this class and its base satisfy :class:`RateCurve`,
    so storms compose over any curve (phase-offset fleet regions
    included), not just :class:`DiurnalRate`.
    """

    base: RateCurve
    multiplier: float
    window_fraction: float

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise TraceError(
                f"storm multiplier must be > 1, got {self.multiplier}"
            )
        if not 0.0 < self.window_fraction <= 1.0:
            raise TraceError(
                f"storm window fraction must be in (0, 1], got "
                f"{self.window_fraction}"
            )

    @property
    def period_s(self) -> float:
        return self.base.period_s

    def peak_time_s(self) -> float:
        """Window centre: where the base curve peaks within one period.

        Curves exposing their own ``peak_time_s`` (like
        :class:`DiurnalRate`, analytically) are asked directly; anything
        else falls back to a deterministic fixed-grid argmax, so any
        :class:`RateCurve` can carry a storm.
        """
        peak_time = getattr(self.base, "peak_time_s", None)
        if callable(peak_time):
            return float(peak_time())
        period = self.base.period_s
        grid = np.linspace(0.0, period, 4096, endpoint=False)
        return float(grid[int(np.argmax(self.base.rate_at(grid)))])

    def rate_at(self, t_s: "np.ndarray | float") -> np.ndarray:
        """Base rate, multiplied inside the periodic storm window."""
        t = np.asarray(t_s, dtype=np.float64)
        rates = self.base.rate_at(t)
        period = self.base.period_s
        offset = np.mod(t - self.peak_time_s() + 0.5 * period, period) - (
            0.5 * period
        )
        half_window = 0.5 * self.window_fraction * period
        return np.where(
            np.abs(offset) <= half_window, rates * self.multiplier, rates
        )

    @property
    def peak_rate(self) -> float:
        """Thinning envelope: the base peak amplified by the storm."""
        return self.base.peak_rate * self.multiplier


def nhpp_arrivals(
    curve: RateCurve, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` arrival timestamps (ms) of a non-homogeneous Poisson process.

    Lewis–Shedler thinning: homogeneous candidates at :attr:`DiurnalRate.
    peak_rate`, each kept with probability ``rate(t) / peak``. Chunk sizes
    depend only on ``n`` and the accepted count so far, so the generator
    is consumed in a deterministic order and a fixed seed replays
    bit-identically.
    """
    if n <= 0:
        raise TraceError(f"n must be > 0, got {n}")
    peak = curve.peak_rate
    out = np.empty(n, dtype=np.float64)
    filled = 0
    t_ms = 0.0
    while filled < n:
        m = max(128, 2 * (n - filled))
        gaps_ms = rng.exponential(1000.0 / peak, size=m)
        candidates = t_ms + np.cumsum(gaps_ms)
        u = rng.random(m)
        accepted = candidates[u * peak < curve.rate_at(candidates / 1000.0)]
        take = min(accepted.size, n - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
        t_ms = float(candidates[-1])
    return out
