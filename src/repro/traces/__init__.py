"""Workloads and traces: arrival processes, request streams, and the
synthetic Azure-like invocation trace used by the Fig. 1a analysis."""

from .arrivals import (
    azure_like_arrivals,
    burst_arrivals,
    constant_arrivals,
    poisson_arrivals,
)
from .azure import AzureLikeTrace, SlackAnalysis, generate_trace, slack_analysis
from .workload import (
    ArrivalSpec,
    WorkloadConfig,
    generate_requests,
    shifted_workload,
)

__all__ = [
    "poisson_arrivals",
    "constant_arrivals",
    "burst_arrivals",
    "azure_like_arrivals",
    "ArrivalSpec",
    "AzureLikeTrace",
    "SlackAnalysis",
    "generate_trace",
    "slack_analysis",
    "WorkloadConfig",
    "generate_requests",
    "shifted_workload",
]
