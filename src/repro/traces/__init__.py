"""Workloads and traces: arrival processes, request streams, the synthetic
Azure-like invocation trace used by the Fig. 1a analysis, and the
trace-file subsystem (versioned on-disk format, diurnal rate curves, Zipf
popularity mixes, record/replay)."""

from .arrivals import (
    azure_like_arrivals,
    burst_arrivals,
    constant_arrivals,
    poisson_arrivals,
)
from .azure import AzureLikeTrace, SlackAnalysis, generate_trace, slack_analysis
from .diurnal import DiurnalRate, nhpp_arrivals
from .popularity import PopularityMix
from .trace_file import (
    TRACE_SCHEMA,
    WorkloadTrace,
    cached_trace,
    generate_workload_trace,
    load_trace,
    replay_arrivals,
    save_trace,
    trace_from_requests,
)
from .workload import (
    ArrivalSpec,
    WorkloadConfig,
    generate_requests,
    shifted_workload,
)

__all__ = [
    "poisson_arrivals",
    "constant_arrivals",
    "burst_arrivals",
    "azure_like_arrivals",
    "nhpp_arrivals",
    "DiurnalRate",
    "PopularityMix",
    "TRACE_SCHEMA",
    "WorkloadTrace",
    "load_trace",
    "save_trace",
    "cached_trace",
    "generate_workload_trace",
    "trace_from_requests",
    "replay_arrivals",
    "ArrivalSpec",
    "AzureLikeTrace",
    "SlackAnalysis",
    "generate_trace",
    "slack_analysis",
    "WorkloadConfig",
    "generate_requests",
    "shifted_workload",
]
