"""Workloads and traces: arrival processes, request streams, and the
synthetic Azure-like invocation trace used by the Fig. 1a analysis."""

from .arrivals import burst_arrivals, constant_arrivals, poisson_arrivals
from .azure import AzureLikeTrace, SlackAnalysis, generate_trace, slack_analysis
from .workload import WorkloadConfig, generate_requests, shifted_workload

__all__ = [
    "poisson_arrivals",
    "constant_arrivals",
    "burst_arrivals",
    "AzureLikeTrace",
    "SlackAnalysis",
    "generate_trace",
    "slack_analysis",
    "WorkloadConfig",
    "generate_requests",
    "shifted_workload",
]
