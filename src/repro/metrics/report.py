"""Plain-text table formatting for experiment output.

Every experiment prints the same rows/series the paper's tables and figures
report; this module renders them as aligned ASCII tables.
"""

from __future__ import annotations

import typing as _t

__all__ = ["format_table", "format_kv"]


def format_table(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned table with a separator under the header."""
    if not headers:
        raise ValueError("table requires headers")

    def fmt(cell: _t.Any) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: _t.Mapping[str, _t.Any], title: str = "") -> str:
    """Render key/value diagnostics."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        if isinstance(v, float):
            v = f"{v:.4g}"
        lines.append(f"{k.ljust(width)}  {v}")
    return "\n".join(lines)
