"""Statistical helpers: CDFs, percentile summaries."""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import ExperimentError

__all__ = ["empirical_cdf", "percentile_summary", "ratio_of_percentiles"]


def empirical_cdf(
    data: _t.Sequence[float] | np.ndarray,
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) points of the empirical CDF.

    With ``grid`` unset, evaluates at the sorted unique sample points.
    """
    arr = np.sort(np.asarray(data, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("empirical_cdf requires at least one sample")
    if grid is None:
        grid = arr
    frac = np.searchsorted(arr, grid, side="right") / arr.size
    return np.asarray(grid, dtype=np.float64), frac


def percentile_summary(
    data: _t.Sequence[float] | np.ndarray,
    percentiles: _t.Sequence[float] = (1, 25, 50, 75, 95, 99),
) -> dict[str, float]:
    """Named percentiles plus mean/min/max.

    Raises :class:`~repro.errors.ExperimentError` on an empty sample (a
    summary of nothing is a harness bug, not a statistics question). A
    single sample is legal and degenerate: every percentile, the mean,
    the min and the max all equal that sample.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError(
            "percentile_summary requires at least one sample (got an "
            "empty stream — did the run complete any requests?)"
        )
    out = {f"p{p:g}": float(np.percentile(arr, p)) for p in percentiles}
    out["mean"] = float(arr.mean())
    out["min"] = float(arr.min())
    out["max"] = float(arr.max())
    return out


def ratio_of_percentiles(
    data: _t.Sequence[float] | np.ndarray, hi: float = 99.0, lo: float = 50.0
) -> float:
    """P_hi / P_lo — the skew measure the paper quotes (e.g. P99/P50)."""
    arr = np.asarray(data, dtype=np.float64)
    denom = float(np.percentile(arr, lo))
    if denom <= 0:
        raise ValueError(f"P{lo:g} must be positive, got {denom}")
    return float(np.percentile(arr, hi)) / denom
