"""Metrics: slack, SLO compliance, distribution statistics, reporting."""

from .report import format_kv, format_table
from .slack import slack, slack_cdf, slacks
from .slo import e2e_percentile, meets_p99_slo, violation_count, violation_rate
from .stats import empirical_cdf, percentile_summary, ratio_of_percentiles
from .streaming import (
    P2Quantile,
    StreamingMoments,
    StreamingSummary,
    WindowedRate,
)

__all__ = [
    "slack",
    "slacks",
    "slack_cdf",
    "violation_rate",
    "violation_count",
    "meets_p99_slo",
    "e2e_percentile",
    "empirical_cdf",
    "percentile_summary",
    "ratio_of_percentiles",
    "P2Quantile",
    "StreamingMoments",
    "StreamingSummary",
    "WindowedRate",
    "format_table",
    "format_kv",
]
