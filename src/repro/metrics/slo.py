"""SLO compliance metrics."""

from __future__ import annotations

import typing as _t

import numpy as np

from ..workflow.request import RequestOutcome

__all__ = ["violation_rate", "meets_p99_slo", "violation_count"]


def violation_count(outcomes: _t.Sequence[RequestOutcome]) -> int:
    """Number of requests whose end-to-end latency exceeded the SLO."""
    return sum(1 for o in outcomes if not o.slo_met)


def violation_rate(outcomes: _t.Sequence[RequestOutcome]) -> float:
    """Fraction of requests that violated the SLO."""
    if not outcomes:
        raise ValueError("violation_rate requires at least one outcome")
    return violation_count(outcomes) / len(outcomes)


def meets_p99_slo(outcomes: _t.Sequence[RequestOutcome]) -> bool:
    """True when at most 1% of requests violate (the P99 SLO contract).

    A P99 latency target is met exactly when the violation rate is <= 1%;
    the paper's systems (and Janus) are judged by this criterion.
    """
    return violation_rate(outcomes) <= 0.01 + 1e-12


def e2e_percentile(outcomes: _t.Sequence[RequestOutcome], p: float) -> float:
    """Percentile of the end-to-end latencies."""
    if not outcomes:
        raise ValueError("e2e_percentile requires at least one outcome")
    return float(np.percentile([o.e2e_ms for o in outcomes], p))
