"""Slack metrics (paper §II-A): ``slack = 1 - l / T``."""

from __future__ import annotations

import typing as _t

import numpy as np

from ..workflow.request import RequestOutcome

__all__ = ["slack", "slacks", "slack_cdf"]


def slack(latency_ms: float, slo_ms: float) -> float:
    """``1 - l / T``; negative when the SLO is violated."""
    if slo_ms <= 0:
        raise ValueError(f"SLO must be > 0, got {slo_ms}")
    return 1.0 - latency_ms / slo_ms


def slacks(outcomes: _t.Sequence[RequestOutcome]) -> np.ndarray:
    """Per-request slacks."""
    return np.asarray([o.slack for o in outcomes], dtype=np.float64)


def slack_cdf(
    outcomes: _t.Sequence[RequestOutcome],
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of per-request slack (Fig. 1a-style)."""
    from .stats import empirical_cdf

    if grid is None:
        grid = np.linspace(-0.5, 1.0, 151)
    return empirical_cdf(slacks(outcomes), grid)
