"""Bounded-memory streaming estimators for the always-on serving loop.

Batch experiments materialise every :class:`~repro.workflow.request.
RequestOutcome` and summarise at the end with :func:`~repro.metrics.stats.
percentile_summary`. A live service cannot: at millions of requests the
sample arrays dominate memory and the summary is needed *while* the run
is in flight. This module provides the O(1)-memory counterparts:

* :class:`P2Quantile` — the P² (piecewise-parabolic) single-quantile
  estimator of Jain & Chlamtac (CACM 1985): five markers whose heights
  approximate the quantile curve, updated in O(1) per observation.
* :class:`StreamingMoments` — Welford's online mean/variance with
  min/max tracking.
* :class:`WindowedRate` — rate of a boolean outcome over the last N
  observations (SLO attainment, hit/miss) next to the all-time rate.
* :class:`StreamingSummary` — the composite used by the serving loop:
  several :class:`P2Quantile` markers plus moments, with a
  ``snapshot() -> dict`` whose keys mirror :func:`percentile_summary`
  (``p50``/``p95``/``p99``/``mean``/``min``/``max`` plus ``count``).

Every estimator is deterministic in the arrival order of its inputs: two
replays of the same stream produce bit-identical snapshots. That is the
contract the serving determinism tests pin.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from ..errors import ExperimentError

__all__ = [
    "P2Quantile",
    "StreamingMoments",
    "WindowedRate",
    "StreamingSummary",
]


class P2Quantile:
    """P² estimate of one quantile ``q`` in (0, 1) at O(1) memory.

    Five markers track (min, q/2, q, (1+q)/2, max); interior marker
    heights are nudged toward their desired positions with a piecewise-
    parabolic fit each time an observation lands. Until five samples
    have arrived the estimate is the exact order statistic of the
    buffered observations, so small finite streams are exact.
    """

    __slots__ = ("q", "_heights", "_pos", "_desired", "_dp", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ExperimentError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: list[float] = []
        self._pos = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._dp = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self.count += 1
        h = self._heights
        if self.count <= 5:
            h.append(x)
            h.sort()
            return
        pos = self._pos
        # Locate the cell and stretch the extreme markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1
        for i in range(5):
            self._desired[i] += self._dp[i]
        # Nudge interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1
            ):
                step = 1 if d >= 1.0 else -1
                cand = self._parabolic(i, step)
                if not h[i - 1] < cand < h[i + 1]:
                    cand = self._linear(i, step)
                h[i] = cand
                pos[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._pos
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (exact below six samples)."""
        if self.count == 0:
            raise ExperimentError(
                f"P2Quantile(q={self.q:g}) has no samples yet"
            )
        h = self._heights
        if self.count <= 5:
            # Exact empirical quantile (linear interpolation, matching
            # numpy's default) over the buffered samples.
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(h) - 1)
            frac = rank - lo
            return h[lo] + frac * (h[hi] - h[lo])
        return h[2]

    def snapshot(self) -> dict[str, float]:
        """Estimate plus sample count as a plain dict."""
        return {"q": self.q, "value": self.value, "count": float(self.count)}


class StreamingMoments:
    """Welford online mean/variance with min/max, O(1) memory."""

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._total = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the running moments."""
        x = float(x)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._total += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def _require(self) -> None:
        if self.count == 0:
            raise ExperimentError("StreamingMoments has no samples yet")

    @property
    def mean(self) -> float:
        """Running arithmetic mean."""
        self._require()
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero for a single observation."""
        self._require()
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return self.variance**0.5

    @property
    def min(self) -> float:
        """Smallest observation so far."""
        self._require()
        return self._min

    @property
    def max(self) -> float:
        """Largest observation so far."""
        self._require()
        return self._max

    @property
    def total(self) -> float:
        """Sum of all observations (cost counters)."""
        return self._total

    def snapshot(self) -> dict[str, float]:
        """Moments as a plain dict."""
        self._require()
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "total": self.total,
        }


class WindowedRate:
    """Rate of a boolean outcome over the last ``window`` observations.

    Keeps the all-time counters next to a bounded deque so callers can
    report both "SLO attainment since start" and "over recent traffic".
    """

    __slots__ = ("window", "_recent", "_recent_true", "count", "true_count")

    def __init__(self, window: int = 1000) -> None:
        if window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._recent: deque[bool] = deque(maxlen=self.window)
        self._recent_true = 0
        self.count = 0
        self.true_count = 0

    def add(self, outcome: bool) -> None:
        """Record one boolean outcome."""
        outcome = bool(outcome)
        if len(self._recent) == self.window and self._recent[0]:
            self._recent_true -= 1
        self._recent.append(outcome)
        if outcome:
            self._recent_true += 1
            self.true_count += 1
        self.count += 1

    @property
    def rate(self) -> float:
        """All-time fraction of true outcomes (0 when empty)."""
        return self.true_count / self.count if self.count else 0.0

    @property
    def windowed_rate(self) -> float:
        """Fraction of true outcomes over the window (0 when empty)."""
        n = len(self._recent)
        return self._recent_true / n if n else 0.0

    def snapshot(self) -> dict[str, float]:
        """Counters as a plain dict."""
        return {
            "count": float(self.count),
            "rate": self.rate,
            "windowed_rate": self.windowed_rate,
            "window": float(self.window),
        }


class StreamingSummary:
    """Composite latency summary: P² percentiles plus Welford moments.

    The ``snapshot()`` keys deliberately mirror :func:`repro.metrics.
    stats.percentile_summary` (``p50``, ``p95``, ``p99``, ``mean``,
    ``min``, ``max``) so streaming and exact paths are interchangeable
    in reports, with an extra ``count``.
    """

    def __init__(
        self, percentiles: _t.Sequence[float] = (50.0, 95.0, 99.0)
    ) -> None:
        if not percentiles:
            raise ExperimentError("StreamingSummary needs >= 1 percentile")
        self.percentiles = tuple(float(p) for p in percentiles)
        self._quantiles = {p: P2Quantile(p / 100.0) for p in self.percentiles}
        self.moments = StreamingMoments()

    def add(self, x: float) -> None:
        """Fold one observation into every estimator."""
        for est in self._quantiles.values():
            est.add(x)
        self.moments.add(x)

    @property
    def count(self) -> int:
        """Observations folded in so far."""
        return self.moments.count

    def percentile(self, p: float) -> float:
        """Current estimate of percentile ``p`` (must be configured)."""
        try:
            return self._quantiles[float(p)].value
        except KeyError:
            raise ExperimentError(
                f"percentile {p:g} not tracked (have "
                f"{', '.join(f'{q:g}' for q in self.percentiles)})"
            )

    def snapshot(self) -> dict[str, float]:
        """Summary dict shaped like :func:`percentile_summary` + count."""
        if self.count == 0:
            raise ExperimentError("StreamingSummary has no samples yet")
        out = {f"p{p:g}": self._quantiles[p].value for p in self.percentiles}
        out["mean"] = self.moments.mean
        out["min"] = self.moments.min
        out["max"] = self.moments.max
        out["count"] = float(self.count)
        return out
