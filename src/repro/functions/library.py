"""Calibrated models of the paper's evaluation functions.

Two real-world workflows (paper §V-A):

* **Intelligent Assistant (IA)** — chain OD -> QA -> TS over COCO2014 images
  and SQuAD2.0 questions; SLO 3 s at concurrency 1. Inputs vary widely
  (1–15 objects per image, 35–641 words per passage), producing up to ~3.8x
  latency variance (Fig. 1b).
* **Video Analytics (VA)** — chain FE -> ICL -> ICO over fixed-duration
  videos; SLO 1.5 s. Parallelised stages suffer cross-function interference;
  P99/P50 ratios are 1.46 / 1.56 / 1.37 (§V-A). FE and ICO are not
  batchable (Fig. 4 caption).

Plus the four §II-B microbenchmarks with distinct dominant resources used in
the interference study (Fig. 1c): AES encryption (CPU), Redis read (memory),
socket communication (network), disk write (IO).

Calibration targets (loose, asserted by tests/test_calibration.py):
per-function work levels are chosen so that the paper's budget ranges
(IA: 2–7 s, VA: 1.5–2 s) bracket the achievable execution-time range for
1000–3000 millicores.
"""

from __future__ import annotations

from .model import FunctionModel, Resource
from .worksets import (
    FixedWorkset,
    LogUniformWorkset,
    LognormalWorkset,
    UniformIntWorkset,
)

__all__ = [
    "object_detection",
    "question_answering",
    "text_to_speech",
    "frame_extraction",
    "image_classification",
    "image_compression",
    "aes_encryption",
    "redis_read",
    "socket_communication",
    "disk_write",
    "ia_functions",
    "va_functions",
    "microbenchmark_functions",
]


# --------------------------------------------------------------------------
# Intelligent Assistant (IA): OD -> QA -> TS
# --------------------------------------------------------------------------

def object_detection() -> FunctionModel:
    """OD — Faster-RCNN-style detector; cost grows with objects per image."""
    return FunctionModel(
        name="OD",
        serial_ms=160.0,
        parallel_ms=760.0,
        sigma=0.10,
        workset=UniformIntWorkset(lo=1, hi=15),
        workset_gamma=0.30,
        batch_eta=0.35,
        batchable=True,
        dominant_resource=Resource.CPU,
        cold_start_ms=900.0,
        memory_mb=1024,
    )


def question_answering() -> FunctionModel:
    """QA — DistilBERT-style extractive QA; cost grows with passage length."""
    return FunctionModel(
        name="QA",
        serial_ms=140.0,
        parallel_ms=740.0,
        sigma=0.10,
        workset=LogUniformWorkset(lo=35.0, hi=641.0),
        workset_gamma=0.25,
        batch_eta=0.30,
        batchable=True,
        dominant_resource=Resource.MEMORY,
        cold_start_ms=800.0,
        memory_mb=1024,
    )


def text_to_speech() -> FunctionModel:
    """TS — MMS-style TTS; cost grows with answer length."""
    return FunctionModel(
        name="TS",
        serial_ms=150.0,
        parallel_ms=720.0,
        sigma=0.10,
        workset=LogUniformWorkset(lo=5.0, hi=120.0),
        workset_gamma=0.25,
        batch_eta=0.32,
        batchable=True,
        dominant_resource=Resource.CPU,
        cold_start_ms=700.0,
        memory_mb=768,
    )


# --------------------------------------------------------------------------
# Video Analytics (VA): FE -> ICL -> ICO
# --------------------------------------------------------------------------

def frame_extraction() -> FunctionModel:
    """FE — ffmpeg frame extraction; identical-duration inputs, IO-bound."""
    return FunctionModel(
        name="FE",
        serial_ms=90.0,
        parallel_ms=370.0,
        sigma=0.05,
        workset=LognormalWorkset(median=1.0, sigma=0.14, clip_hi=2.0),
        workset_gamma=1.0,
        batch_eta=0.0,
        batchable=False,
        dominant_resource=Resource.IO,
        cold_start_ms=400.0,
        memory_mb=512,
    )


def image_classification() -> FunctionModel:
    """ICL — SqueezeNet classification over the extracted frames."""
    return FunctionModel(
        name="ICL",
        serial_ms=80.0,
        parallel_ms=400.0,
        sigma=0.06,
        workset=LognormalWorkset(median=1.0, sigma=0.168, clip_hi=2.2),
        workset_gamma=1.0,
        batch_eta=0.30,
        batchable=True,
        dominant_resource=Resource.CPU,
        cold_start_ms=600.0,
        memory_mb=768,
    )


def image_compression() -> FunctionModel:
    """ICO — archive/compress the classified frames; not batchable."""
    return FunctionModel(
        name="ICO",
        serial_ms=85.0,
        parallel_ms=360.0,
        sigma=0.05,
        workset=LognormalWorkset(median=1.0, sigma=0.126, clip_hi=1.8),
        workset_gamma=1.0,
        batch_eta=0.0,
        batchable=False,
        dominant_resource=Resource.IO,
        cold_start_ms=350.0,
        memory_mb=512,
    )


# --------------------------------------------------------------------------
# §II-B microbenchmarks (interference study, Fig. 1c)
# --------------------------------------------------------------------------

def aes_encryption() -> FunctionModel:
    """CPU-intensive: AES encryption of an in-memory buffer."""
    return FunctionModel(
        name="AES",
        serial_ms=20.0,
        parallel_ms=380.0,
        sigma=0.08,
        workset=FixedWorkset(1.0),
        dominant_resource=Resource.CPU,
        cold_start_ms=200.0,
        memory_mb=256,
    )


def redis_read() -> FunctionModel:
    """Memory-bandwidth-intensive: bulk read from an in-memory store."""
    return FunctionModel(
        name="RedisRead",
        serial_ms=30.0,
        parallel_ms=270.0,
        sigma=0.10,
        workset=FixedWorkset(1.0),
        dominant_resource=Resource.MEMORY,
        cold_start_ms=250.0,
        memory_mb=512,
    )


def socket_communication() -> FunctionModel:
    """Network-intensive: socket send/receive loop."""
    return FunctionModel(
        name="SocketComm",
        serial_ms=40.0,
        parallel_ms=210.0,
        sigma=0.12,
        workset=FixedWorkset(1.0),
        dominant_resource=Resource.NETWORK,
        cold_start_ms=220.0,
        memory_mb=256,
    )


def disk_write() -> FunctionModel:
    """IO-intensive: write a payload to local disk."""
    return FunctionModel(
        name="DiskWrite",
        serial_ms=35.0,
        parallel_ms=240.0,
        sigma=0.11,
        workset=FixedWorkset(1.0),
        dominant_resource=Resource.IO,
        cold_start_ms=200.0,
        memory_mb=256,
    )


# --------------------------------------------------------------------------
# Groupings
# --------------------------------------------------------------------------

def ia_functions() -> list[FunctionModel]:
    """The Intelligent Assistant chain, in execution order."""
    return [object_detection(), question_answering(), text_to_speech()]


def va_functions() -> list[FunctionModel]:
    """The Video Analytics chain, in execution order."""
    return [frame_extraction(), image_classification(), image_compression()]


def microbenchmark_functions() -> list[FunctionModel]:
    """The four dominant-resource microbenchmarks of §II-B."""
    return [aes_encryption(), redis_read(), socket_communication(), disk_write()]
