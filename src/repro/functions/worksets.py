"""Working-set (input size) distributions.

Paper §II-B / §V-A: function inputs have widely varying sizes — COCO2014
images carry 1–15 objects, SQuAD2.0 passages span 35–641 words, and Azure
blob sizes span nine orders of magnitude. The samplers here reproduce those
published ranges so the execution-time model inherits the documented skew.

Each distribution exposes vectorised sampling (``sample``) plus a
``reference`` size used to normalise the workset factor in the performance
model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import FunctionModelError

__all__ = [
    "WorksetDistribution",
    "FixedWorkset",
    "UniformIntWorkset",
    "LogUniformWorkset",
    "LognormalWorkset",
]


class WorksetDistribution(abc.ABC):
    """Interface for input working-set samplers."""

    @property
    @abc.abstractmethod
    def reference(self) -> float:
        """Reference (typical) working-set size used for normalisation."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw working-set size(s). Scalar when ``size`` is ``None``."""

    @abc.abstractmethod
    def support(self) -> tuple[float, float]:
        """(lower, upper) bounds of possible sizes (may be infinite)."""


@dataclass(frozen=True)
class FixedWorkset(WorksetDistribution):
    """Degenerate distribution: every invocation sees the same input size."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise FunctionModelError(f"workset value must be > 0: {self.value}")

    @property
    def reference(self) -> float:
        return self.value

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value, dtype=np.float64)

    def support(self) -> tuple[float, float]:
        return (self.value, self.value)


@dataclass(frozen=True)
class UniformIntWorkset(WorksetDistribution):
    """Uniform integer sizes in [lo, hi] (e.g. objects per COCO image)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi < self.lo:
            raise FunctionModelError(f"invalid range [{self.lo}, {self.hi}]")

    @property
    def reference(self) -> float:
        return (self.lo + self.hi) / 2.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        draw = rng.integers(self.lo, self.hi + 1, size=size)
        if size is None:
            return float(draw)
        return draw.astype(np.float64)

    def support(self) -> tuple[float, float]:
        return (float(self.lo), float(self.hi))


@dataclass(frozen=True)
class LogUniformWorkset(WorksetDistribution):
    """Log-uniform sizes in [lo, hi] (e.g. words per SQuAD passage).

    Log-uniform matches the long-tailed but bounded spread of text lengths:
    most passages are short, a few are near the maximum.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi <= self.lo:
            raise FunctionModelError(f"invalid range [{self.lo}, {self.hi}]")

    @property
    def reference(self) -> float:
        # geometric midpoint — the median of a log-uniform distribution
        return float(np.sqrt(self.lo * self.hi))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        u = rng.uniform(np.log(self.lo), np.log(self.hi), size=size)
        out = np.exp(u)
        if size is None:
            return float(out)
        return out

    def support(self) -> tuple[float, float]:
        return (float(self.lo), float(self.hi))


@dataclass(frozen=True)
class LognormalWorkset(WorksetDistribution):
    """Lognormal sizes (e.g. video/blob sizes with heavy upper tail)."""

    median: float
    sigma: float
    clip_hi: float = float("inf")

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise FunctionModelError(f"median must be > 0: {self.median}")
        if self.sigma < 0:
            raise FunctionModelError(f"sigma must be >= 0: {self.sigma}")
        if self.clip_hi <= self.median:
            raise FunctionModelError(
                f"clip_hi {self.clip_hi} must exceed median {self.median}"
            )

    @property
    def reference(self) -> float:
        return self.median

    def sample(self, rng: np.random.Generator, size: int | None = None):
        z = rng.standard_normal(size=size)
        out = np.minimum(self.median * np.exp(self.sigma * z), self.clip_hi)
        if size is None:
            return float(out)
        return out

    def support(self) -> tuple[float, float]:
        return (0.0, float(self.clip_hi))
