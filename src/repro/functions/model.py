"""Parametric execution-time model for serverless functions.

The paper's algorithms consume only a function's latency *distribution*
``L(p, k, c)`` (percentile x CPU size x concurrency). We therefore replace
the real OD/QA/TS/FE/ICL/ICO containers with a calibrated generative model
whose structure mirrors the paper's observed runtime dynamics (§II-B):

``t = (serial + parallel * 1000/k) * (w / w_ref)^gamma * batch(c) * q * e^(sigma z)``

* **Amdahl scaling** — ``serial`` ms of non-parallelisable work plus
  ``parallel`` ms measured at 1000 millicores that shrinks inversely with the
  allocation ``k`` (diminishing returns, paper Fig. 7b).
* **Working-set factor** — input size ``w`` drawn from the function's workset
  distribution, scaled by power law exponent ``gamma`` (paper Fig. 1b).
* **Batching** — per-request time inflates by ``1 + eta * (c - 1)`` for a
  batch of ``c`` (GrandSLAM-style batching; non-batchable functions reject
  ``c > 1``).
* **Interference** — multiplicative slowdown ``q >= 1`` supplied by the
  platform's co-location model (paper Fig. 1c).
* **Residual noise** — lognormal with log-std ``sigma`` capturing everything
  else (JIT, caching, scheduling jitter).

The per-invocation randomness is captured in an :class:`InvocationDynamics`
value *before* execution, so the same request can be replayed under any
allocation — this is what makes the Optimal oracle and common-random-number
policy comparisons possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import FunctionModelError
from ..types import Millicores
from .worksets import FixedWorkset, WorksetDistribution

__all__ = ["Resource", "InvocationDynamics", "FunctionModel"]

_REFERENCE_MILLICORES = 1000.0


class Resource(enum.Enum):
    """Dominant resource dimension of a function (drives interference)."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"
    NETWORK = "network"


@dataclass(frozen=True)
class InvocationDynamics:
    """The random state of one invocation, fixed before execution.

    Attributes
    ----------
    workset:
        Input working-set size ``w``.
    noise_z:
        Standard-normal draw for the residual lognormal noise.
    interference:
        Multiplicative slowdown ``q >= 1`` from co-location.
    """

    workset: float
    noise_z: float
    interference: float = 1.0

    def __post_init__(self) -> None:
        if self.workset <= 0:
            raise FunctionModelError(f"workset must be > 0: {self.workset}")
        if self.interference < 1.0:
            raise FunctionModelError(
                f"interference must be >= 1: {self.interference}"
            )


@dataclass(frozen=True)
class FunctionModel:
    """A serverless function's performance model and metadata."""

    name: str
    serial_ms: float
    parallel_ms: float
    sigma: float = 0.15
    workset: WorksetDistribution = field(default_factory=FixedWorkset)
    workset_gamma: float = 0.0
    batch_eta: float = 0.35
    batchable: bool = True
    dominant_resource: Resource = Resource.CPU
    cold_start_ms: float = 500.0
    memory_mb: int = 512

    def __post_init__(self) -> None:
        if not self.name:
            raise FunctionModelError("function name may not be empty")
        if self.serial_ms < 0 or self.parallel_ms < 0:
            raise FunctionModelError(
                f"{self.name}: serial/parallel work must be >= 0"
            )
        if self.serial_ms + self.parallel_ms <= 0:
            raise FunctionModelError(f"{self.name}: total work must be > 0")
        if self.sigma < 0:
            raise FunctionModelError(f"{self.name}: sigma must be >= 0")
        if self.workset_gamma < 0:
            raise FunctionModelError(f"{self.name}: gamma must be >= 0")
        if self.batch_eta < 0:
            raise FunctionModelError(f"{self.name}: batch_eta must be >= 0")
        if self.cold_start_ms < 0:
            raise FunctionModelError(f"{self.name}: cold_start_ms must be >= 0")

    # -- deterministic pieces ---------------------------------------------
    def base_time(self, k: Millicores) -> float:
        """Noise-free time (ms) at allocation ``k`` for the reference input."""
        if k <= 0:
            raise FunctionModelError(f"{self.name}: millicores must be > 0, got {k}")
        return self.serial_ms + self.parallel_ms * (_REFERENCE_MILLICORES / k)

    def workset_factor(self, workset: float) -> float:
        """Power-law input-size multiplier ``(w / w_ref)^gamma``."""
        if self.workset_gamma == 0.0:
            return 1.0
        return float((workset / self.workset.reference) ** self.workset_gamma)

    def batch_factor(self, concurrency: int) -> float:
        """Multiplier for processing a batch of ``concurrency`` requests."""
        if concurrency < 1:
            raise FunctionModelError(
                f"{self.name}: concurrency must be >= 1, got {concurrency}"
            )
        if concurrency > 1 and not self.batchable:
            raise FunctionModelError(
                f"{self.name}: function is not batchable (concurrency={concurrency})"
            )
        return 1.0 + self.batch_eta * (concurrency - 1)

    # -- sampling -----------------------------------------------------------
    def sample_dynamics(
        self,
        rng: np.random.Generator,
        interference: float = 1.0,
    ) -> InvocationDynamics:
        """Draw the random state of one invocation."""
        return InvocationDynamics(
            workset=float(self.workset.sample(rng)),
            noise_z=float(rng.standard_normal()),
            interference=float(interference),
        )

    def execution_time(
        self,
        k: Millicores,
        dynamics: InvocationDynamics,
        concurrency: int = 1,
    ) -> float:
        """Execution time (ms) of the invocation under allocation ``k``.

        Deterministic given ``dynamics``: larger ``k`` strictly reduces the
        time whenever the function has parallel work.
        """
        return (
            self.base_time(k)
            * self.workset_factor(dynamics.workset)
            * self.batch_factor(concurrency)
            * dynamics.interference
            * float(np.exp(self.sigma * dynamics.noise_z))
        )

    # -- batched evaluation (vectorised executor hot path) ------------------
    def workset_factors(self, worksets: np.ndarray) -> np.ndarray:
        """Vector of ``workset_factor`` values, bit-identical to the scalar.

        ``x ** gamma`` is evaluated with Python's ``float.__pow__`` per
        element: ``np.power`` uses a different algorithm and diverges from
        the scalar path in the last ulp for a few percent of inputs, which
        would break the bit-exact replay contract.
        """
        if self.workset_gamma == 0.0:
            return np.ones(len(worksets), dtype=np.float64)
        ref = self.workset.reference
        gamma = self.workset_gamma
        return np.asarray(
            [(w / ref) ** gamma for w in worksets.tolist()], dtype=np.float64
        )

    def batch_factors(self, concurrencies: np.ndarray) -> np.ndarray:
        """Vector of ``batch_factor`` values, bit-identical to the scalar."""
        concurrencies = np.asarray(concurrencies, dtype=np.int64)
        if concurrencies.size and int(concurrencies.min()) < 1:
            bad = int(concurrencies[concurrencies < 1][0])
            raise FunctionModelError(
                f"{self.name}: concurrency must be >= 1, got {bad}"
            )
        if not self.batchable and concurrencies.size and int(concurrencies.max()) > 1:
            bad = int(concurrencies[concurrencies > 1][0])
            raise FunctionModelError(
                f"{self.name}: function is not batchable (concurrency={bad})"
            )
        return 1.0 + self.batch_eta * (concurrencies - 1)

    def execution_times(
        self,
        ks: np.ndarray,
        worksets: np.ndarray,
        noise_zs: np.ndarray,
        interferences: np.ndarray,
        concurrencies: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`execution_time` over aligned per-invocation arrays.

        Factor order matches the scalar product exactly (base * workset *
        batch * interference * noise, left-associative), so each element is
        bit-identical to the corresponding scalar call.
        """
        ks = np.asarray(ks, dtype=np.int64)
        if ks.size and int(ks.min()) <= 0:
            bad = int(ks[ks <= 0][0])
            raise FunctionModelError(
                f"{self.name}: millicores must be > 0, got {bad}"
            )
        base = self.serial_ms + self.parallel_ms * (_REFERENCE_MILLICORES / ks)
        return (
            base
            * self.workset_factors(worksets)
            * self.batch_factors(concurrencies)
            * np.asarray(interferences, dtype=np.float64)
            * np.exp(self.sigma * np.asarray(noise_zs, dtype=np.float64))
        )

    def sample_execution_times(
        self,
        k: Millicores,
        n: int,
        rng: np.random.Generator,
        concurrency: int = 1,
        interference: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Vectorised sampling of ``n`` execution times (profiling hot path)."""
        if n <= 0:
            raise FunctionModelError(f"sample count must be > 0, got {n}")
        w = np.asarray(self.workset.sample(rng, size=n), dtype=np.float64)
        z = rng.standard_normal(n)
        q = np.broadcast_to(np.asarray(interference, dtype=np.float64), (n,))
        if np.any(q < 1.0):
            raise FunctionModelError("interference must be >= 1")
        ws = (
            (w / self.workset.reference) ** self.workset_gamma
            if self.workset_gamma != 0.0
            else 1.0
        )
        return (
            self.base_time(k)
            * self.batch_factor(concurrency)
            * ws
            * q
            * np.exp(self.sigma * z)
        )
