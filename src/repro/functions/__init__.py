"""Serverless function performance models.

Parametric substitutes for the paper's real containers (see DESIGN.md §2):
an Amdahl CPU-scaling law combined with working-set, batching, interference
and residual-noise multipliers. The module also ships calibrated instances
of the six evaluation functions (OD/QA/TS, FE/ICL/ICO) and the four
dominant-resource microbenchmarks.
"""

from .library import (
    aes_encryption,
    disk_write,
    frame_extraction,
    ia_functions,
    image_classification,
    image_compression,
    microbenchmark_functions,
    object_detection,
    question_answering,
    redis_read,
    socket_communication,
    text_to_speech,
    va_functions,
)
from .model import FunctionModel, InvocationDynamics, Resource
from .worksets import (
    FixedWorkset,
    LognormalWorkset,
    LogUniformWorkset,
    UniformIntWorkset,
    WorksetDistribution,
)

__all__ = [
    "FunctionModel",
    "InvocationDynamics",
    "Resource",
    "WorksetDistribution",
    "FixedWorkset",
    "UniformIntWorkset",
    "LogUniformWorkset",
    "LognormalWorkset",
    "object_detection",
    "question_answering",
    "text_to_speech",
    "frame_extraction",
    "image_classification",
    "image_compression",
    "aes_encryption",
    "redis_read",
    "socket_communication",
    "disk_write",
    "ia_functions",
    "va_functions",
    "microbenchmark_functions",
]
