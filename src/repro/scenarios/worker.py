"""Worker agent for the distributed sweep fabric.

One agent serves one coordinator connection: it introduces itself with a
``hello`` frame, answers the coordinator's HMAC ``challenge`` when the
fabric is token-protected (``--auth-token`` / ``$JANUS_FABRIC_TOKEN``),
receives the pickled per-cell function (plus optional worker initializer
and cache configuration) in the ``setup`` reply, then pulls work in a
strict request/response loop::

    -> ("next",)
    <- ("task", pos, item) | ("idle", delay_s) | ("done",)
    -> ("result", pos, outcome, cache_hit) | ("error", pos, exception)

Pull-based dispatch is what makes cross-host stealing work: a drained
agent's ``next`` simply gets handed a cell from a loaded host's queue.

Cache integration mirrors the sweep runner's parent-side behaviour. In
``shared`` mode the agent opens the coordinator's cell-cache directory
itself (same filesystem, e.g. NFS) and looks up/stores cells locally; in
``protocol`` mode it asks the coordinator over the same socket::

    -> ("cache_get", pos)            <- ("cache", CachedCell | None)
    -> ("cache_put", pos, result)    <- ("ok",)

Either way a cell is stored *before* its result frame is sent, so an
agent killed right after finishing a cell still leaves it resumable.

Launched as ``python -m repro.scenarios.worker --connect HOST:PORT
--label NAME [--nproc N]`` by the coordinator (locally or over SSH);
``--nproc N`` forks N serving processes that share one label, giving the
host N true slots through one launch. :func:`serve` is importable so
tests can run in-process worker threads against a coordinator.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
import typing as _t

from ..errors import ExperimentError
from .wire import (
    AUTH_ENV,
    WIRE_VERSION,
    auth_digest,
    connect_with_retry,
    recv_msg,
    send_msg,
)

__all__ = ["serve", "main"]


def _portable(exc: Exception) -> Exception:
    """``exc`` if it survives pickling, else a summarising ExperimentError.

    Worker-side failures travel back as pickled exception objects; an
    unpicklable one (e.g. carrying an open handle) is flattened to its
    type and message — :func:`~repro.scenarios.runner.evaluate_cell`
    already embedded the failing cell's name in that message.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExperimentError(f"{type(exc).__name__}: {exc}")


def _run_task(
    sock: _t.Any,
    fn: _t.Callable[[_t.Any], _t.Any],
    pos: int,
    item: _t.Any,
    cache: _t.Any,
    cache_mode: str | None,
) -> None:
    """Evaluate one dispatched item, short-circuiting through the cache."""
    from .matrix import Scenario

    cacheable = isinstance(item, Scenario)
    if cacheable:
        hit = None
        if cache is not None:
            hit = cache.lookup(item)
        elif cache_mode == "protocol":
            send_msg(sock, ("cache_get", pos))
            reply = recv_msg(sock)
            if reply is None:
                raise ConnectionError("coordinator closed during cache_get")
            hit = reply[1]
        if hit is not None:
            # Another sweep (or this one, before it was killed) already
            # evaluated this cell: fabricate the outcome the per-cell
            # function would have produced. Zero wall so the hit cannot
            # pollute the calibrated cost model.
            from .runner import CellOutcome

            outcome = CellOutcome(
                result=hit.result, wall_seconds=0.0, cache_stats={}
            )
            send_msg(sock, ("result", pos, outcome, True))
            return
    try:
        outcome = fn(item)
    except Exception as exc:
        send_msg(sock, ("error", pos, _portable(exc)))
        return
    if cacheable and hasattr(outcome, "result"):
        # Store before reporting: a worker killed between these two frames
        # leaves the cell resumable instead of re-evaluated.
        if cache is not None:
            cache.store(item, outcome.result)
        elif cache_mode == "protocol":
            send_msg(sock, ("cache_put", pos, outcome.result))
            if recv_msg(sock) is None:
                raise ConnectionError("coordinator closed during cache_put")
    send_msg(sock, ("result", pos, outcome, False))


def _serve_socket(
    sock: _t.Any, label: str, auth_token: str | None = None
) -> None:
    send_msg(sock, ("hello", WIRE_VERSION, label, os.getpid()))
    reply = recv_msg(sock)
    if reply is None:
        return
    if reply is not None and reply[0] == "challenge":
        # Authenticated fabric: prove we hold the shared secret before
        # any work (or the pickled setup payload) crosses the wire.
        if auth_token is None:
            raise ExperimentError(
                f"worker {label!r}: coordinator requires authentication — "
                f"pass --auth-token or set ${AUTH_ENV}"
            )
        send_msg(sock, ("auth", auth_digest(auth_token, reply[1])))
        reply = recv_msg(sock)
        if reply is None:
            return
    if reply[0] == "reject":
        raise ExperimentError(
            f"coordinator rejected worker {label!r}: {reply[1]}"
        )
    if reply[0] != "setup":
        raise ExperimentError(
            f"worker {label!r}: expected setup, got {reply[0]!r}"
        )
    setup = reply[1]
    fn = setup["fn"]
    initializer = setup.get("initializer")
    if initializer is not None:
        initializer(*setup.get("initargs", ()))
    cache_mode = setup.get("cache_mode")
    cache = None
    if cache_mode == "shared" and setup.get("cache_dir"):
        from .cache import CellCache

        cache = CellCache(setup["cache_dir"])
    while True:
        send_msg(sock, ("next",))
        msg = recv_msg(sock)
        if msg is None or msg[0] == "done":
            return
        if msg[0] == "idle":
            time.sleep(float(msg[1]))
            continue
        if msg[0] != "task":
            raise ExperimentError(
                f"worker {label!r}: unexpected coordinator message {msg[0]!r}"
            )
        _, pos, item = msg
        _run_task(sock, fn, pos, item, cache, cache_mode)


def serve(
    address: tuple[str, int],
    label: str = "local",
    connect_timeout: float = 20.0,
    auth_token: str | None = None,
) -> None:
    """Connect to the coordinator at ``address`` and serve until done.

    A connection dropped *after* the handshake means the coordinator went
    away (finished, failed fast, or was killed) — that is an orderly stop
    for the agent, not an error, so it returns instead of raising; the
    coordinator's own loss accounting re-dispatches anything in flight.
    ``auth_token`` (default: ``$JANUS_FABRIC_TOKEN``) answers the
    coordinator's HMAC challenge on authenticated fabrics.
    """
    if auth_token is None:
        auth_token = os.environ.get(AUTH_ENV) or None
    host, port = address
    sock = connect_with_retry(host, int(port), timeout=connect_timeout)
    try:
        _serve_socket(sock, label, auth_token)
    except (ConnectionError, OSError):
        return
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.worker",
        description="distributed-sweep worker agent (launched by the "
        "coordinator; see repro.scenarios.distributed)",
    )
    parser.add_argument(
        "--connect", required=True, help="coordinator address as HOST:PORT"
    )
    parser.add_argument(
        "--label", default="local", help="host label used in scheduling stats"
    )
    parser.add_argument(
        "--nproc", type=int, default=1,
        help="serving processes to run under this label (host slots)",
    )
    parser.add_argument(
        "--timeout", type=float, default=20.0,
        help="seconds to retry the initial connect",
    )
    parser.add_argument(
        "--auth-token", default=None,
        help=f"shared fabric secret for the coordinator's HMAC challenge "
        f"(default: ${AUTH_ENV})",
    )
    args = parser.parse_args(argv)
    host, _, port_s = args.connect.rpartition(":")
    if not host or not port_s.isdigit():
        parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
    address = (host, int(port_s))
    if args.nproc <= 1:
        serve(
            address,
            args.label,
            connect_timeout=args.timeout,
            auth_token=args.auth_token,
        )
        return 0
    # One process per slot, each with its own coordinator connection —
    # the single code path above, multiplied. Import by package name so
    # spawn-based multiprocessing can locate the target outside __main__.
    import multiprocessing

    from repro.scenarios.worker import serve as _serve

    procs = [
        multiprocessing.Process(
            target=_serve,
            args=(address, args.label),
            kwargs={
                "connect_timeout": args.timeout,
                "auth_token": args.auth_token,
            },
        )
        for _ in range(args.nproc)
    ]
    for proc in procs:
        proc.start()
    code = 0
    for proc in procs:
        proc.join()
        if proc.exitcode:
            code = 1
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
