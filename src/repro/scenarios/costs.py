"""Calibrated cell-cost model for the work-stealing scheduler.

:meth:`Scenario.cost_estimate` is a static heuristic (requests x tenants
x nodes x policies x a fixed DES-cluster premium). It orders dispatch
well enough cold, but misjudges the *relative* premium of cluster cells,
Janus+ synthesis, and large-sample profiling campaigns. This module
closes the loop: the sweep runner records each evaluated cell's wall
time under the cache directory, keyed by the cell's *cost family* — the
fields that determine how expensive a cell is, excluding those that only
change the randomness (seeds, SLO scale). On later sweeps the
work-stealing backend prefers the recorded history's mean over the
static heuristic wherever history exists, and rescales the heuristic
into seconds for the cells it has never timed.

Strictly render-only: the model feeds dispatch *ordering*, and every
backend reassembles results in expansion order, so a stale or wildly
wrong calibration costs wall time, never correctness. Lookups and
records never raise — a corrupt history file is simply ignored.
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import typing as _t

from ..persist import atomic_write_bytes, version_salted_digest

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .matrix import Scenario

__all__ = ["CellCostModel"]

#: Recorded walls kept per cost family (newest last). A short window so
#: calibration tracks the current host, not months of stale history.
_HISTORY_MAX = 16


def _static_estimate(scenario: "Scenario") -> float:
    """The static heuristic, shielded (ordering must never raise)."""
    try:
        return float(scenario.cost_estimate())
    except Exception:
        return 1.0


def _cost_key(scenario: "Scenario") -> tuple:
    """The cell's cost family: everything that shapes its wall time.

    Seeds, SLO scale and pinned budgets are deliberately absent — they
    move the randomness and the DP grid bounds, not the asymptotic work —
    so one family aggregates walls across a whole matrix row and history
    from a previous sweep transfers to a grown one.
    """
    from .registry import workflow_epoch

    return (
        "cell-cost",
        scenario.workflow,
        workflow_epoch(scenario.workflow),
        scenario.executor,
        scenario.cluster is not None
        and dataclasses.astuple(scenario.cluster),
        scenario.tenants,
        scenario.n_requests,
        scenario.samples,
        tuple(sorted(scenario.policies)),
    )


class CellCostModel:
    """Per-cost-family wall-time history under ``<root>/``.

    One JSON file per family holding a bounded list of recorded wall
    seconds. :meth:`estimate_all` serves calibrated means where history
    exists and bridges the rest through the static heuristic, rescaled by
    the observed median seconds-per-heuristic-unit so both populations
    order sensibly against each other.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        #: Render-only counters (how many estimates were calibrated).
        self.calibrated = 0
        self.fallbacks = 0
        self._memo: dict[str, list[float] | None] = {}

    def _path(self, scenario: "Scenario") -> str:
        return os.path.join(
            self.root, f"{version_salted_digest(_cost_key(scenario))}.json"
        )

    def _history(self, scenario: "Scenario") -> list[float] | None:
        try:
            path = self._path(scenario)
        except Exception:
            return None
        if path in self._memo:
            return self._memo[path]
        history: list[float] | None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            walls = [float(w) for w in doc["walls"]]
            history = walls if walls else None
        except (OSError, ValueError, KeyError, TypeError):
            history = None  # absent or torn — fall back to the heuristic
        self._memo[path] = history
        return history

    def estimate_all(
        self, scenarios: _t.Sequence["Scenario"]
    ) -> list[float]:
        """One dispatch-ordering cost per cell (never raises).

        Cells with history cost their mean recorded wall (seconds).
        Cells without are bridged via the static heuristic scaled by the
        median observed seconds-per-unit across the calibrated cells —
        with no history anywhere this degenerates to exactly the static
        heuristic, i.e. the cold behaviour.
        """
        statics = [_static_estimate(s) for s in scenarios]
        means = []
        for scenario in scenarios:
            history = self._history(scenario)
            means.append(
                sum(history) / len(history) if history else None
            )
        ratios = [
            mean / static
            for mean, static in zip(means, statics)
            if mean is not None and static > 0
        ]
        scale = statistics.median(ratios) if ratios else 1.0
        costs = []
        for mean, static in zip(means, statics):
            if mean is not None:
                self.calibrated += 1
                costs.append(mean)
            else:
                self.fallbacks += 1
                costs.append(static * scale)
        return costs

    def record(self, scenario: "Scenario", wall_seconds: float) -> None:
        """Append one observed wall time to the cell's family history.

        Called from the sweep parent as cells complete; best-effort (a
        read-only cache dir must not fail the sweep).
        """
        try:
            path = self._path(scenario)
            history = self._history(scenario) or []
            history = (history + [float(wall_seconds)])[-_HISTORY_MAX:]
            atomic_write_bytes(
                path,
                json.dumps({"schema": 1, "walls": history}).encode("utf-8"),
            )
            self._memo[path] = history
        except Exception:
            pass

    def stats(self) -> dict[str, int]:
        """Estimate counters since construction (render-only diagnostics)."""
        return {"calibrated": self.calibrated, "fallbacks": self.fallbacks}
