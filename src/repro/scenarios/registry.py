"""Workflow catalog for scenarios: name -> zero-arg workflow factory.

Scenarios cross process boundaries, so they carry workflow *names* and the
worker resolves them through this registry. Factories registered at import
time (the catalog chains plus the diamond DAG) are therefore available in
every pool worker; caller-registered factories must live in an importable
module for spawned workers to see them.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError
from ..workflow.catalog import Workflow, intelligent_assistant, video_analytics

__all__ = ["SCENARIO_WORKFLOWS", "register_workflow", "scenario_workflow"]

WorkflowFactory = _t.Callable[[], Workflow]


def _media() -> Workflow:
    # Imported lazily: experiments.extension_dag pulls in profiling/cluster
    # machinery that plain chain sweeps never need.
    from ..experiments.extension_dag import diamond_workflow

    return diamond_workflow()


#: Named workflow topologies a scenario can reference.
SCENARIO_WORKFLOWS: dict[str, WorkflowFactory] = {
    "IA": intelligent_assistant,
    "VA": video_analytics,
    "media": _media,
}


#: Registration epoch per name: bumped on re-registration so the runner's
#: per-process profile cache (keyed by name + epoch) cannot serve a new
#: factory the old factory's profiling campaign. Other names' cached
#: campaigns stay valid.
_EPOCHS: dict[str, int] = {}


def workflow_epoch(name: str) -> int:
    """Current registration epoch of ``name`` (0 for never re-registered)."""
    return _EPOCHS.get(name, 0)


def register_workflow(name: str, factory: WorkflowFactory) -> WorkflowFactory:
    """Register a workflow factory under ``name`` (usable as a decorator)."""
    if name in SCENARIO_WORKFLOWS:
        _EPOCHS[name] = _EPOCHS.get(name, 0) + 1
    SCENARIO_WORKFLOWS[name] = factory
    return factory


def scenario_workflow(name: str) -> Workflow:
    """Build the workflow registered under ``name``."""
    try:
        factory = SCENARIO_WORKFLOWS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario workflow {name!r}; "
            f"known: {sorted(SCENARIO_WORKFLOWS)}"
        )
    return factory()
