"""The declarative scenario matrix and its expansion into seeded specs."""

from __future__ import annotations

import functools
import itertools
import typing as _t
from dataclasses import dataclass, field, replace

from ..cluster.faults import CLUSTER_FAULT_KINDS, FaultSpec, parse_fault
from ..cluster.platform import ClusterConfig
from ..errors import ClusterError, ExperimentError, TraceError
from ..fleet.topology import FleetConfig, parse_fleet
from ..rng import child_seed
from ..traces.workload import ArrivalSpec
from .registry import SCENARIO_WORKFLOWS

__all__ = [
    "Scenario",
    "ScenarioMatrix",
    "parse_arrival",
    "parse_cluster_config",
    "parse_fault",
    "parse_fleet",
    "storm_arrival",
]

#: Default policy suite for sweeps: the paper's headline systems.
DEFAULT_SWEEP_POLICIES = ("Optimal", "ORION", "GrandSLAM", "Janus")


def _validate_suite(
    policies: _t.Sequence[str], baseline: str | None
) -> None:
    """Reject unknown policy/baseline names before any cell runs."""
    from ..policies.registry import POLICIES

    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        raise ExperimentError(
            f"unknown policies {unknown}; known: {POLICIES.names()}"
        )
    if baseline is not None and baseline not in policies:
        raise ExperimentError(
            f"baseline {baseline!r} is not in the policy suite "
            f"{list(policies)}"
        )


def _validate_executor(executor: str | None) -> None:
    """Reject unregistered executor names before any cell runs."""
    from ..runtime.registry import executor_names

    if executor is not None and executor not in executor_names():
        raise ExperimentError(
            f"unknown executor {executor!r}; known: {executor_names()} "
            f"(None auto-selects from the workflow topology)"
        )


def _takes_cluster_config(executor: str | None) -> bool:
    """Whether a backend's factory accepts a ``config`` option.

    A registry capability probe, not a name check, so custom cluster-like
    backends (a multi-tenant wrapper, say) receive the matrix's
    :class:`ClusterConfig` without touching the sweep engine.
    """
    from ..runtime.registry import executor_accepts_option

    return executor is not None and executor_accepts_option(executor, "config")


def _takes_faults(executor: str | None) -> bool:
    """Whether a backend's factory accepts a ``faults`` option.

    Same capability-probe pattern as :func:`_takes_cluster_config`:
    cluster-side fault kinds need a backend that can inject them.
    """
    from ..runtime.registry import executor_accepts_option

    return executor is not None and executor_accepts_option(executor, "faults")


def storm_arrival(base: ArrivalSpec, spec: FaultSpec) -> ArrivalSpec:
    """The effective arrival process of a cell under a ``storm`` fault.

    Storms are arrival-side: instead of touching the cluster, the fault
    rewrites the cell's arrival into the ``"storm"`` kind — the same base
    rate with the flash-crowd window stacked on top. A Poisson base storms
    a flat curve; a diurnal base keeps its swing and period so the crowd
    lands on the busy hour. Other kinds have no meaningful rate curve to
    amplify and are rejected.
    """
    if spec.kind != "storm":
        raise ExperimentError(
            f"storm_arrival requires a storm fault, got {spec.kind!r}"
        )
    if base.kind == "poisson":
        return ArrivalSpec(
            kind="storm",
            rate_per_s=base.rate_per_s,
            amplitude=0.0,
            period_s=base.period_s,
            phase=base.phase,
            storm_multiplier=spec.multiplier,
            storm_fraction=spec.window_fraction,
        )
    if base.kind == "diurnal":
        return ArrivalSpec(
            kind="storm",
            rate_per_s=base.rate_per_s,
            amplitude=base.amplitude,
            period_s=base.period_s,
            phase=base.phase,
            storm_multiplier=spec.multiplier,
            storm_fraction=spec.window_fraction,
        )
    raise ExperimentError(
        f"storm faults amplify a rate curve and need a poisson or diurnal "
        f"arrival, got {base.kind!r}"
    )


@functools.lru_cache(maxsize=64)
def _workflow_node_count(name: str, epoch: int) -> int:
    """DAG node count of a registered workflow (cached per registration).

    ``epoch`` keys the cache on the registry's re-registration counter so
    a swapped factory is re-measured without evicting other names.
    """
    from .registry import scenario_workflow

    return scenario_workflow(name).dag.num_nodes


#: Relative per-request weight of serving a cell on the DES cluster
#: platform versus the closed-form analytic executors. Discrete-event
#: serving simulates pods, queues and autoscaling per stage, which costs
#: roughly an order of magnitude more wall time per request.
_CLUSTER_COST_FACTOR = 8.0


@dataclass(frozen=True)
class Scenario:
    """One fully specified evaluation cell — picklable and self-contained.

    A scenario names its workflow (resolved through
    :data:`~repro.scenarios.registry.SCENARIO_WORKFLOWS` inside the worker)
    and carries two derived seeds: ``seed`` drives the request streams and
    is unique per cell, ``profile_seed`` drives the profiling campaign and
    is shared by every cell of the same workflow so one campaign serves the
    whole matrix — exactly the paper's "profile once, sweep SLOs" idiom.
    """

    workflow: str
    arrival: ArrivalSpec
    slo_scale: float
    tenants: int
    policies: tuple[str, ...]
    n_requests: int
    samples: int
    seed: int
    profile_seed: int
    baseline: str | None = None
    #: Optional pinned synthesis budget ``(tmin_ms, tmax_ms)`` — e.g. the
    #: paper's per-workflow ranges. ``None`` derives the Eq. 3 range from
    #: the profiles. ``tmax`` is extended to the cell's SLO when the SLO
    #: exceeds it (matching ``experiments.common.ia_setup``).
    budget_ms: tuple[int, int] | None = None
    #: Execution backend name (``None`` auto-selects from the topology;
    #: ``"cluster"`` serves the cell on the DES platform). The request
    #: stream's seed is executor-independent, so cells differing only in
    #: backend replay the *same* workload — the apples-to-apples backend
    #: comparison.
    executor: str | None = None
    #: Cluster dimensions for executors that accept a ``config`` (the
    #: ``"cluster"`` backend); requires a non-``None`` ``executor``.
    cluster: ClusterConfig | None = None
    #: Aggregate with bounded-memory streaming estimators instead of
    #: retaining every outcome — the path for cells with very large
    #: ``n_requests``. Latency percentiles in the cell table become P²
    #: estimates; requires an executor with a streaming path (the
    #: analytic chain backend).
    streaming: bool = False
    #: Fault injection for this cell (``None`` = fault-free). Cluster-side
    #: kinds (preempt/crash/straggler/contention) need an executor whose
    #: factory accepts a ``faults`` option; ``storm`` rewrites the arrival
    #: process instead (see :func:`storm_arrival`) and runs anywhere. The
    #: faults axis is excluded from seed derivation, so a faulted cell
    #: serves the *same* request stream as its fault-free sibling.
    faults: FaultSpec | None = None
    #: Multi-region fleet for this cell (``None`` = single-region). The
    #: fleet axis is excluded from seed derivation like the executor and
    #: faults axes: the home region replays the single-region sibling's
    #: exact request stream, and the extra regions derive their streams
    #: off dedicated ``"region"`` seed labels — common random numbers
    #: across the fleet axis.
    fleet: FleetConfig | None = None

    def __post_init__(self) -> None:
        if self.slo_scale <= 0:
            raise ExperimentError(f"slo_scale must be > 0, got {self.slo_scale}")
        if self.tenants < 1:
            raise ExperimentError(f"tenants must be >= 1, got {self.tenants}")
        if self.n_requests < 1:
            raise ExperimentError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if not self.policies:
            raise ExperimentError("scenario requires at least one policy")
        # Scenarios are public API and may be built without a matrix, so
        # name typos must fail here — run_scenario treats every remaining
        # ExperimentError as a legitimately dead cell.
        _validate_suite(self.policies, self.baseline)
        _validate_executor(self.executor)
        if self.cluster is not None and not _takes_cluster_config(self.executor):
            # Must fail at construction: the analytic backends take no
            # config kwarg, so this would otherwise surface as an error
            # from a pool worker mid-sweep.
            raise ExperimentError(
                f"a cluster config requires an executor whose factory "
                f"accepts a 'config' option (e.g. 'cluster'), got "
                f"executor={self.executor!r}"
            )
        if self.streaming and self.executor not in (None, "analytic"):
            raise ExperimentError(
                f"streaming cells require the analytic chain backend "
                f"(executor None or 'analytic'), got {self.executor!r}"
            )
        if self.streaming and self.fleet is not None:
            # The fleet runner merges materialised per-region outcome
            # lists; bounded-memory aggregation has no multi-region path.
            raise ExperimentError(
                "streaming cells cannot carry a fleet "
                "(per-region outcomes must be retained for the merge)"
            )
        if self.faults is not None:
            if self.faults.kind in CLUSTER_FAULT_KINDS:
                if not _takes_faults(self.executor):
                    raise ExperimentError(
                        f"fault {self.faults.label!r} is injected by the "
                        f"cluster platform and requires an executor whose "
                        f"factory accepts a 'faults' option (e.g. "
                        f"'cluster'), got executor={self.executor!r}"
                    )
                if (
                    self.faults.kind == "crash"
                    and self.cluster is not None
                    and self.cluster.n_vms < 2
                ):
                    raise ExperimentError(
                        f"crash fault needs n_vms >= 2, got "
                        f"n_vms={self.cluster.n_vms}"
                    )
            elif self.faults.kind == "region-failover":
                # A region outage needs a fleet with survivors to drain
                # traffic to — fail at construction, not in a worker.
                if self.fleet is None or len(self.fleet.regions) < 2:
                    raise ExperimentError(
                        f"fault {self.faults.label!r} takes a whole region "
                        f"down and requires a fleet with >= 2 regions, got "
                        f"fleet={self.fleet.label if self.fleet else None!r}"
                    )
            else:
                # Storm: validate the arrival transform at construction so
                # an incompatible base arrival never dies in a worker.
                try:
                    storm_arrival(self.arrival, self.faults)
                except (TraceError, ClusterError) as exc:
                    raise ExperimentError(f"faults axis: {exc}") from exc

    def effective_arrival(self) -> ArrivalSpec:
        """The arrival process this cell actually serves.

        A storm fault rewrites the arrival into the flash-crowd kind;
        everything else passes the declared arrival through.
        """
        if self.faults is not None and self.faults.kind == "storm":
            return storm_arrival(self.arrival, self.faults)
        return self.arrival

    def cost_estimate(self) -> float:
        """Relative evaluation cost of this cell, for schedulers.

        Serving work scales with the request count (``n_requests`` per
        tenant, ``tenants`` merged streams), the number of workflow nodes
        each request traverses, the policies served over the shared
        stream, and the executor: DES cluster cells pay a large
        discrete-event premium over the analytic backends. The estimate
        is unitless and deterministic — the work-stealing backend only
        *orders* dispatch by it, so a misestimate costs wall time, never
        correctness.
        """
        from .registry import workflow_epoch

        try:
            nodes = _workflow_node_count(
                self.workflow, workflow_epoch(self.workflow)
            )
        except Exception:
            # A broken factory must fail inside the evaluated cell (with
            # attribution), never in the scheduler's dispatch ordering.
            nodes = 1
        factor = (
            _CLUSTER_COST_FACTOR
            if self.cluster is not None or _takes_cluster_config(self.executor)
            else 1.0
        )
        # Every fleet region generates and serves its own stream.
        regions = len(self.fleet.regions) if self.fleet is not None else 1
        return (
            float(self.n_requests)
            * self.tenants
            * nodes
            * len(self.policies)
            * factor
            * regions
        )

    @property
    def scenario_id(self) -> str:
        """Stable identifier for reports and skip notes.

        *Not* the seed-derivation label path: :meth:`ScenarioMatrix.expand`
        hashes the workload axes explicitly and deliberately excludes the
        executor, so cells differing only in backend replay the same
        request stream. The executor suffix appears only for explicitly
        named backends, keeping pre-existing auto-selected identifiers
        unchanged.
        """
        base = (
            f"{self.workflow}/{self.arrival.label}/"
            f"slo x{self.slo_scale:g}/tenants {self.tenants}"
        )
        if self.executor is not None:
            base += f"/exec {self.executor}"
        if self.streaming:
            base += "/streaming"
        if self.faults is not None:
            base += f"/faults {self.faults.label}"
        if self.fleet is not None:
            base += f"/fleet {self.fleet.label}"
        return base


@dataclass(frozen=True)
class ScenarioMatrix:
    """Cartesian product of scenario axes, expandable into seeded cells.

    Axes: ``workflows`` (names in the scenario workflow registry) x
    ``arrivals`` (:class:`ArrivalSpec` shapes) x ``slo_scales``
    (multipliers on each workflow's default SLO) x ``tenant_counts``
    (independent request streams merged by arrival time) x ``executors``
    (execution backends — ``None`` auto-selects the analytic backend for
    the topology, ``"cluster"`` serves on the DES platform). Every cell is
    served with every policy in ``policies`` on a common request stream.
    """

    workflows: tuple[str, ...] = ("IA", "VA")
    arrivals: tuple[ArrivalSpec, ...] = (ArrivalSpec(kind="constant"),)
    #: Trace-file paths appended to the arrivals axis as ``replay`` specs:
    #: each trace becomes one more arrival shape every workflow cell
    #: replays (its own sub-stream when the trace carries workflow
    #: attribution). The trace *content digest* is folded into the cell
    #: cache key, so editing a trace file cold-starts exactly the cells
    #: that replay it.
    traces: tuple[str, ...] = ()
    slo_scales: tuple[float, ...] = (1.0,)
    tenant_counts: tuple[int, ...] = (1,)
    policies: tuple[str, ...] = DEFAULT_SWEEP_POLICIES
    n_requests: int = 200
    samples: int = 1000
    seed: int = 2025
    baseline: str | None = field(default=None)
    #: Optional per-workflow pinned synthesis budgets
    #: ``{workflow: (tmin_ms, tmax_ms)}`` — workflows absent from the map
    #: derive their range from the profiles (Eq. 3).
    budgets: _t.Mapping[str, tuple[int, int]] | None = None
    #: Backend axis. Request-stream seeds are executor-independent, so the
    #: same workload replays on every backend of a cell family. Note that
    #: explicitly forcing a chain backend (``"analytic"``/``"batching"``)
    #: onto DAG workflows serves only the critical-path chain — the
    #: documented chain approximation, deliberate when requested by name;
    #: use ``None`` (auto) or ``"cluster"`` for full-DAG serving.
    executors: tuple[str | None, ...] = (None,)
    #: Cluster dimensions applied to the ``"cluster"`` cells of the
    #: ``executors`` axis (``None`` = the :class:`ClusterConfig` defaults).
    cluster: ClusterConfig | None = None
    #: Bounded-memory aggregation for every cell (see
    #: :attr:`Scenario.streaming`) — pair with a large ``n_requests``.
    streaming: bool = False
    #: Fault-injection axis (``(None,)`` = fault-free only). ``None``
    #: entries keep their cells' cache keys identical to a matrix without
    #: the axis; every :class:`~repro.cluster.faults.FaultSpec` entry adds
    #: a faulted sibling of every cell serving the *same* request stream.
    faults: tuple[FaultSpec | None, ...] = (None,)
    #: Multi-region fleet axis (``(None,)`` = single-region only). Like
    #: the faults axis, ``None`` entries keep their cells' cache keys and
    #: seeds identical to a matrix without the axis, and every
    #: :class:`~repro.fleet.topology.FleetConfig` entry adds a fleet
    #: sibling whose home region replays the same request stream.
    fleets: tuple[FleetConfig | None, ...] = (None,)

    def __post_init__(self) -> None:
        for axis, values in (
            ("workflows", self.workflows),
            ("arrivals", self.effective_arrivals()),
            ("slo_scales", self.slo_scales),
            ("tenant_counts", self.tenant_counts),
            ("policies", self.policies),
            ("executors", self.executors),
            ("faults", self.faults),
            ("fleets", self.fleets),
        ):
            if not values:
                raise ExperimentError(f"matrix axis {axis!r} may not be empty")
        self._validate_traces()
        unknown = [w for w in self.workflows if w not in SCENARIO_WORKFLOWS]
        if unknown:
            raise ExperimentError(
                f"unknown workflows {unknown}; "
                f"known: {sorted(SCENARIO_WORKFLOWS)}"
            )
        # Config typos must fail at construction, not hours into a pooled
        # run.
        _validate_suite(self.policies, self.baseline)
        for name in self.executors:
            _validate_executor(name)
        if self.cluster is not None and not any(
            _takes_cluster_config(name) for name in self.executors
        ):
            raise ExperimentError(
                "a cluster config was given but no executor on the axis "
                f"{list(self.executors)} accepts one — the knobs would be "
                "silently ignored; add executors=(..., 'cluster')"
            )
        if self.streaming:
            bad = [e for e in self.executors if e not in (None, "analytic")]
            if bad:
                raise ExperimentError(
                    f"streaming matrices require the analytic chain "
                    f"backend on every executor axis entry, got {bad}"
                )
            fleeted = [f.label for f in self.fleets if f is not None]
            if fleeted:
                raise ExperimentError(
                    f"streaming matrices cannot carry a fleets axis "
                    f"(got {fleeted}) — fleet cells retain per-region "
                    f"outcomes for the merge"
                )
        if self.budgets is not None:
            for wf, pair in self.budgets.items():
                tmin, tmax = pair
                if tmin < 0 or tmax < tmin:
                    raise ExperimentError(
                        f"invalid budget range {pair} for workflow {wf!r}"
                    )
        # Fault-axis combinations fail at construction, not from a pool
        # worker mid-sweep: every fault entry is applied to every cell, so
        # cluster-side kinds need every executor on the axis to accept
        # them, and storms need every arrival to carry a rate curve.
        for spec in self.faults:
            if spec is None:
                continue
            if spec.kind in CLUSTER_FAULT_KINDS:
                refusing = [
                    name for name in self.executors if not _takes_faults(name)
                ]
                if refusing:
                    raise ExperimentError(
                        f"fault {spec.label!r} needs a fault-injecting "
                        f"executor on every axis entry, but {refusing} "
                        f"accept no 'faults' option — split the matrix or "
                        f"use executors=('cluster',)"
                    )
                if (
                    spec.kind == "crash"
                    and self.cluster is not None
                    and self.cluster.n_vms < 2
                ):
                    raise ExperimentError(
                        f"crash fault needs n_vms >= 2, got "
                        f"n_vms={self.cluster.n_vms}"
                    )
            elif spec.kind == "region-failover":
                lacking = [
                    f.label if f is not None else None
                    for f in self.fleets
                    if f is None or len(f.regions) < 2
                ]
                if lacking:
                    raise ExperimentError(
                        f"fault {spec.label!r} needs a fleet with >= 2 "
                        f"regions on every fleets-axis entry, got {lacking} "
                        f"— add fleets=(FleetConfig(...),) or split the "
                        f"matrix"
                    )
            else:
                for arrival in self.effective_arrivals():
                    try:
                        storm_arrival(arrival, spec)
                    except (TraceError, ClusterError) as exc:
                        raise ExperimentError(f"faults axis: {exc}") from exc

    def effective_arrivals(self) -> tuple[ArrivalSpec, ...]:
        """The arrivals axis with each trace appended as a replay spec."""
        return self.arrivals + tuple(
            ArrivalSpec(kind="replay", trace=path) for path in self.traces
        )

    def _validate_traces(self) -> None:
        """Load every trace up front: a bad path or a trace that cannot
        serve a workflow on the axis must fail at construction, not from a
        pool worker mid-sweep."""
        from ..traces.trace_file import cached_trace

        replayed = [
            spec.trace for spec in self.effective_arrivals()
            if spec.kind == "replay" and spec.trace
        ]
        for path in replayed:
            try:
                trace = cached_trace(path)
            except TraceError as exc:
                raise ExperimentError(f"traces axis: {exc}") from exc
            if not trace.workflows:
                # Unattributed: every workflow replays the full stream.
                counts = {wf: trace.n_records for wf in self.workflows}
            else:
                counts = trace.counts_by_workflow()
            # A workflow listed in the catalog but with zero records is
            # just as unservable as one missing from it entirely.
            unserved = [
                wf for wf in self.workflows if not counts.get(wf)
            ]
            if unserved:
                raise ExperimentError(
                    f"trace {path!r} has no records for workflows "
                    f"{unserved} (catalog: {list(trace.workflows)}) — "
                    f"their replay cells could never be generated"
                )
            # Wrap-around replay needs a gap structure: a single-record
            # sub-stream cannot be extended to n_requests > 1 arrivals.
            too_thin = [
                wf for wf in self.workflows
                if counts[wf] == 1 and self.n_requests > 1
            ]
            if too_thin:
                raise ExperimentError(
                    f"trace {path!r} has a single record for workflows "
                    f"{too_thin}, which cannot be extended to "
                    f"n_requests={self.n_requests} replayed arrivals"
                )

    def __len__(self) -> int:
        return (
            len(self.workflows)
            * len(self.effective_arrivals())
            * len(self.slo_scales)
            * len(self.tenant_counts)
            * len(self.executors)
            * len(self.faults)
            * len(self.fleets)
        )

    def expand(self) -> list[Scenario]:
        """All cells in deterministic axis order, each with derived seeds.

        Seeds hash the cell's identifying labels, so adding or removing
        axis values never shifts the randomness of unrelated cells. The
        executor is deliberately absent from the seed labels: cells that
        differ only in backend serve the *same* request stream.
        """
        config_takers = {
            name for name in self.executors if _takes_cluster_config(name)
        }
        cells = []
        for (
            wf, arrival, scale, tenants, executor, faults, fleet,
        ) in itertools.product(
            self.workflows, self.effective_arrivals(), self.slo_scales,
            self.tenant_counts, self.executors, self.faults, self.fleets,
        ):
            cells.append(
                Scenario(
                    workflow=wf,
                    arrival=arrival,
                    slo_scale=float(scale),
                    tenants=int(tenants),
                    policies=tuple(self.policies),
                    n_requests=int(self.n_requests),
                    samples=int(self.samples),
                    # The faults axis is deliberately absent from the seed
                    # labels (like the executor): a faulted cell draws the
                    # same request stream as its fault-free sibling, so
                    # fault impact is measured under common random numbers.
                    seed=child_seed(
                        self.seed, "scenario", wf, arrival.label,
                        f"{float(scale):g}", str(int(tenants)),
                    ),
                    profile_seed=child_seed(self.seed, "profiles", wf),
                    baseline=self.baseline,
                    budget_ms=(
                        tuple(self.budgets[wf])
                        if self.budgets is not None and wf in self.budgets
                        else None
                    ),
                    executor=executor,
                    cluster=self.cluster if executor in config_takers else None,
                    streaming=self.streaming,
                    faults=faults,
                    # Like the faults axis, fleets stay out of the seed
                    # labels: the home region of a fleet cell replays its
                    # single-region sibling's stream.
                    fleet=fleet,
                )
            )
        return cells

    def cost_estimate(self) -> float:
        """Total relative cost of the matrix (sum over expanded cells)."""
        return sum(cell.cost_estimate() for cell in self.expand())

    def with_scale(
        self, n_requests: int | None = None, samples: int | None = None
    ) -> "ScenarioMatrix":
        """Copy with a different evaluation scale (request/sample counts)."""
        changes: dict[str, _t.Any] = {}
        if n_requests is not None:
            changes["n_requests"] = int(n_requests)
        if samples is not None:
            changes["samples"] = int(samples)
        return replace(self, **changes) if changes else self


def parse_arrival(text: str) -> ArrivalSpec:
    """Parse a CLI arrival token into an :class:`ArrivalSpec`.

    Grammar: ``kind[@rate]`` — ``constant`` (back-to-back, or
    ``constant@interval_ms``), ``poisson@8``, ``burst@8`` (burst phase
    defaults to 10x the base rate at fraction 0.1), ``azure@8`` (heavy
    tail, default sigma), ``diurnal@8`` (sinusoidal NHPP, default
    amplitude/period) — plus ``replay@PATH``, whose operand is a trace
    file path, not a rate. Full control over burst/azure/diurnal shape
    parameters is available through :class:`ArrivalSpec` directly.
    """
    kind, _, rate = text.partition("@")
    kind = kind.strip().lower()
    if kind == "replay":
        # The operand is a path; empty means a malformed token.
        return ArrivalSpec(kind="replay", trace=rate.strip() or None)
    try:
        value = float(rate) if rate else None
    except ValueError:
        raise ExperimentError(f"invalid arrival rate in {text!r}")
    if kind == "constant":
        return ArrivalSpec(
            kind="constant", interval_ms=value if value is not None else 0.0
        )
    if kind in ("poisson", "burst", "azure", "diurnal"):
        # An explicit 0 rate passes through so the generators' own
        # validation rejects it — only an *absent* rate gets the default.
        return ArrivalSpec(
            kind=kind, rate_per_s=value if value is not None else 10.0
        )
    raise ExperimentError(
        f"unknown arrival kind {kind!r} in {text!r}; "
        "known: constant, poisson, burst, azure, diurnal, replay"
    )


def parse_cluster_config(text: str) -> ClusterConfig:
    """Parse CLI cluster knobs into a :class:`ClusterConfig`.

    Grammar: comma-separated ``field=value`` pairs over the config's
    fields, e.g. ``n_vms=2,warm_pool_size=4,autoscale=false,
    keepalive_ms=500``. Values parse as ``none``/booleans/ints/floats;
    unknown field names raise.
    """
    overrides: dict[str, _t.Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key, raw = key.strip(), raw.strip().lower()
        if not sep or not key or not raw:
            raise ExperimentError(
                f"invalid cluster knob {part!r}; expected field=value"
            )
        value: _t.Any
        if raw in ("none", "null"):
            value = None
        elif raw in ("true", "yes", "on"):
            value = True
        elif raw in ("false", "no", "off"):
            value = False
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    raise ExperimentError(
                        f"invalid value {raw!r} for cluster knob {key!r}"
                    )
        overrides[key] = value
    return ClusterConfig().with_overrides(**overrides)
