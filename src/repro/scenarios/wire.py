"""Length-prefixed pickle framing for the distributed sweep fabric.

One frame is a 4-byte big-endian payload length followed by a pickled
Python object. Both sides of the coordinator/worker socket speak only
whole frames, so partial reads can never deliver a torn message, and an
EOF between frames is an unambiguous "peer is gone" signal
(:func:`recv_msg` returns ``None``) rather than an exception mid-object.

The protocol itself is a strict request/response vocabulary driven by the
worker (see :mod:`repro.scenarios.worker` and
:mod:`repro.scenarios.distributed`); this module only owns the framing,
the handshake version, and the small connect-with-retry helper the
launchers use while the coordinator's listener comes up.
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
import socket
import struct
import time
import typing as _t

from ..errors import ExperimentError

__all__ = [
    "WIRE_VERSION",
    "AUTH_ENV",
    "auth_digest",
    "send_msg",
    "recv_msg",
    "connect_with_retry",
]

#: Handshake version, exchanged in the worker's ``hello``. Bumped whenever
#: the message vocabulary changes shape, so a stale worker binary talking
#: to a newer coordinator fails loudly instead of mis-pickling.
WIRE_VERSION = 1

#: Environment variable both sides fall back to for the shared fabric
#: secret when no explicit ``--auth-token`` is given.
AUTH_ENV = "JANUS_FABRIC_TOKEN"


def auth_digest(token: str, nonce: str) -> str:
    """HMAC-SHA256 response to a coordinator's auth challenge.

    The coordinator sends a fresh random ``nonce`` after a
    version-matching ``hello``; the worker proves it holds the shared
    ``token`` by returning this digest. The token itself never crosses
    the wire, and a replayed response is useless against a new nonce.
    """
    return hmac.new(
        token.encode("utf-8"), nonce.encode("utf-8"), hashlib.sha256
    ).hexdigest()

_HEADER = struct.Struct(">I")

#: Frames above this are refused on receive — a corrupted length prefix
#: must not turn into a multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_msg(sock: socket.socket, obj: _t.Any) -> None:
    """Send one framed, pickled object over ``sock``."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Exactly ``n`` bytes from ``sock``, or ``None`` on a clean EOF.

    EOF mid-buffer (after some bytes arrived) is a torn frame and raises:
    the peer died mid-message, which callers must not confuse with an
    orderly shutdown between frames.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ConnectionError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> _t.Any | None:
    """Receive one framed object, or ``None`` on a clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ExperimentError(
            f"wire frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("peer closed between header and payload")
    return pickle.loads(payload)


def connect_with_retry(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> socket.socket:
    """TCP-connect to ``(host, port)``, retrying refusals until ``timeout``.

    Workers race the coordinator's ``accept`` loop at launch; a refused
    connection within the window just means the listener isn't up yet.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(interval)
