"""Sweep results: slim per-cell records aggregated into one report.

Workers return :class:`ScenarioResult` — scenario identity plus the
per-policy metric table, no raw outcomes — so pooled runs ship kilobytes,
not the full request streams, across the process boundary. The aggregate
:class:`SweepReport` serialisation is deliberately timing-free: two runs of
the same matrix with the same seed produce byte-identical JSON whether they
ran serially or on a pool, which is what the determinism tests assert.
"""

from __future__ import annotations

import csv
import io
import json
import typing as _t
from dataclasses import asdict, dataclass, field

from ..errors import ExperimentError
from ..metrics.report import format_table

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .matrix import Scenario

__all__ = ["ScenarioResult", "SweepReport"]

#: Metric columns every cell's table carries per policy.
CELL_METRICS = (
    "mean_allocated_millicores",
    "normalized_cpu",
    "p50_e2e_ms",
    "p99_e2e_ms",
    "violation_rate",
    "mean_slack",
)

#: Platform extras promoted to CSV columns (blank on analytic cells;
#: fault counters additionally blank on fault-free cluster cells, so
#: pre-existing cell payloads stay byte-identical).
EXTRA_METRICS = (
    "cold_start_rate",
    "mean_cluster_allocated",
    "throttled",
    "preemptions",
    "evictions",
    "retries",
    "straggler_exposure",
    # Fleet accounting (blank on single-region cells). Per-region keys
    # (request share, SLO attainment, cold starts by region name) live in
    # the JSON extras only — region names are config-dependent, so they
    # cannot be fixed CSV columns.
    "fleet_spillovers",
    "fleet_failovers",
    "fleet_remote_fraction",
    "fleet_rtt_penalty_ms",
)

#: Deterministic per-policy extras the runner carries from
#: :class:`~repro.runtime.results.RunResult` into each cell. Anything not
#: listed here (e.g. wall-clock diagnostics such as ``synthesis_seconds``)
#: stays out of the payload so sweep JSON remains byte-stable.
CARRIED_EXTRAS = EXTRA_METRICS + (
    "idle_millicore_ms",
    "autoscaler_adjustments",
    "hit_rate",
)


@dataclass(frozen=True)
class ScenarioResult:
    """Per-policy metrics of one evaluated scenario cell."""

    scenario_id: str
    workflow: str
    arrival: str
    slo_scale: float
    tenants: int
    slo_ms: float
    seed: int
    baseline: str
    executor: str
    table: dict[str, dict[str, float]]
    #: Per-policy extras: platform stats (cold-start rate, mean allocated
    #: cluster millicores, throttle count, ...) on cluster-backend cells,
    #: plus policy diagnostics (``hit_rate``) wherever the policy reports
    #: them — analytic cells carry only the latter.
    extras: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.table:
            raise ExperimentError(f"{self.scenario_id}: empty result table")

    def metric(self, policy: str, name: str) -> float:
        """One metric value for one policy (raises on unknown policy)."""
        try:
            return float(self.table[policy][name])
        except KeyError:
            raise ExperimentError(
                f"{self.scenario_id}: no {name!r} for policy {policy!r} "
                f"(have {sorted(self.table)})"
            )

    def extra(self, policy: str, name: str) -> float | None:
        """One extra for one policy, or ``None`` when the cell's backend
        did not report it (e.g. platform stats on an analytic cell)."""
        return self.extras.get(policy, {}).get(name)

    def attainment(self, policy: str) -> float:
        """SLO attainment (1 - violation rate) of one policy."""
        return 1.0 - self.metric(policy, "violation_rate")


@dataclass
class SweepReport:
    """Aggregated results of one :class:`ScenarioMatrix` run."""

    results: list[ScenarioResult]
    seed: int
    wall_seconds: float = 0.0
    max_workers: int = 1
    skipped: dict[str, list[str]] = field(default_factory=dict)
    #: Execution backend that scheduled the cells (results are
    #: backend-independent; this is provenance for the rendered summary).
    backend: str = "serial"
    #: Cell-cache lookup counters (``{"hits": .., "misses": ..}``; empty
    #: when caching was off). Diagnostics only — like ``wall_seconds``,
    #: deliberately excluded from :meth:`to_dict`, because counter values
    #: depend on scheduling (which worker's cold memo served a cell), not
    #: on the results.
    cell_cache: dict[str, int] = field(default_factory=dict)
    #: Synthesis memo counters summed over evaluated cells, per section
    #: (``{"dp": {"memory_hits": .., "disk_hits": .., "solves": ..},
    #: "hints": {...}}``). Diagnostics only, excluded from the JSON.
    synthesis_cache: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Backend scheduling diagnostics, for backends that report any — the
    #: distributed fabric's per-host ``{"hosts": {label: {"workers": ..,
    #: "completed": .., "steals": .., "lost": .., ...}}, "redispatched":
    #: ..}`` counters. Diagnostics only, excluded from the JSON: which
    #: host evaluated a cell can never change the cell.
    backend_stats: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.results:
            raise ExperimentError("sweep produced no results")

    # -- introspection ------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of evaluated scenario cells."""
        return len(self.results)

    def policies(self) -> list[str]:
        """Every policy that produced a result in at least one cell."""
        seen: dict[str, None] = {}
        for res in self.results:
            for name in res.table:
                seen.setdefault(name)
        return list(seen)

    def cells_for(self, policy: str) -> list[ScenarioResult]:
        """Cells in which ``policy`` was evaluated."""
        return [r for r in self.results if policy in r.table]

    # -- per-policy aggregates ----------------------------------------------
    def mean_metric(self, policy: str, name: str) -> float:
        """Mean of one metric over every cell the policy appears in."""
        cells = self.cells_for(policy)
        if not cells:
            raise ExperimentError(f"policy {policy!r} appears in no cell")
        return sum(c.metric(policy, name) for c in cells) / len(cells)

    def attainment(self, policy: str) -> float:
        """Mean SLO attainment across the matrix."""
        return 1.0 - self.mean_metric(policy, "violation_rate")

    def baselines(self) -> list[str]:
        """Distinct normalisation baselines across cells (usually one).

        More than one entry means normalised-CPU numbers are not mutually
        comparable across all cells — e.g. a mixed chain/DAG matrix where
        ``Optimal`` exists only on the chains. Pin ``ScenarioMatrix.
        baseline`` to force uniformity (cells that cannot build it die).
        """
        seen: dict[str, None] = {}
        for res in self.results:
            seen.setdefault(res.baseline)
        return list(seen)

    def mean_normalized_cpu(self, policy: str) -> float:
        """Mean *per-cell-baseline*-normalised CPU across the matrix.

        Check :meth:`baselines` before comparing across policies — with
        mixed baselines this mean mixes normalisation denominators.
        """
        return self.mean_metric(policy, "normalized_cpu")

    def mean_extra(self, policy: str, name: str) -> float:
        """Mean of one extra over the cells that report it.

        Platform stats (cold-start rate, mean allocated cluster
        millicores, throttle count) exist only on cluster-backend cells,
        so their mean is cluster-only; policy diagnostics like
        ``hit_rate`` are reported by every backend and average across all
        of them. Raises when no cell reports ``name``.
        """
        values = [
            v for r in self.results
            if (v := r.extra(policy, name)) is not None
        ]
        if not values:
            raise ExperimentError(
                f"no cell reports extra {name!r} for policy {policy!r}"
            )
        return sum(values) / len(values)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-policy aggregate rows (the :meth:`render` table)."""
        out: dict[str, dict[str, float]] = {}
        for policy in self.policies():
            out[policy] = {
                "cells": float(len(self.cells_for(policy))),
                "slo_attainment": self.attainment(policy),
                "mean_cpu_millicores": self.mean_metric(
                    policy, "mean_allocated_millicores"
                ),
                "normalized_cpu": self.mean_normalized_cpu(policy),
                "p50_e2e_ms": self.mean_metric(policy, "p50_e2e_ms"),
                "p99_e2e_ms": self.mean_metric(policy, "p99_e2e_ms"),
            }
        return out

    # -- export --------------------------------------------------------------
    def to_dict(self) -> dict[str, _t.Any]:
        """Timing-free payload: byte-stable for a given matrix + seed."""
        return {
            "seed": self.seed,
            "num_cells": self.num_cells,
            "skipped": {k: list(v) for k, v in sorted(self.skipped.items())},
            "results": [asdict(r) for r in self.results],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Deterministic JSON of :meth:`to_dict` (excludes wall time)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=2))

    def to_csv(self) -> str:
        """One CSV row per (cell, policy) with every cell metric.

        Platform extras (:data:`EXTRA_METRICS`) trail the metric columns;
        they are blank for cells whose backend reports none.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(
            ["scenario_id", "workflow", "arrival", "slo_scale", "tenants",
             "slo_ms", "baseline", "executor", "policy", "slo_attainment",
             *CELL_METRICS, *EXTRA_METRICS]
        )
        for res in self.results:
            for policy, row in res.table.items():
                extra_cols = [
                    v if (v := res.extra(policy, m)) is not None else ""
                    for m in EXTRA_METRICS
                ]
                writer.writerow(
                    [res.scenario_id, res.workflow, res.arrival,
                     res.slo_scale, res.tenants, res.slo_ms, res.baseline,
                     res.executor, policy, 1.0 - row["violation_rate"]]
                    + [row[m] for m in CELL_METRICS]
                    + extra_cols
                )
        return buf.getvalue()

    def write_csv(self, path: str) -> None:
        """Write :meth:`to_csv` to ``path``."""
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(self.to_csv())

    # -- presentation ---------------------------------------------------------
    def render(self) -> str:
        """Aggregate table plus sweep-level diagnostics."""
        rows = [
            (
                policy,
                int(agg["cells"]),
                agg["slo_attainment"],
                agg["mean_cpu_millicores"],
                agg["normalized_cpu"],
                agg["p50_e2e_ms"],
                agg["p99_e2e_ms"],
            )
            for policy, agg in self.summary().items()
        ]
        table = format_table(
            ["policy", "cells", "SLO att.", "mean CPU (mc)", "norm. CPU",
             "P50 (ms)", "P99 (ms)"],
            rows,
            title=(
                f"Scenario sweep: {self.num_cells} cells, seed {self.seed}, "
                f"{self.backend} backend, {self.max_workers} worker(s), "
                f"{self.wall_seconds:.1f} s"
            ),
        )
        if self.cell_cache:
            table += (
                f"\ncell cache: {self.cell_cache.get('hits', 0)} hit(s), "
                f"{self.cell_cache.get('misses', 0)} miss(es)"
            )
        if self.synthesis_cache:
            parts = []
            for section in sorted(self.synthesis_cache):
                counters = self.synthesis_cache[section]
                inner = ", ".join(
                    f"{name} {counters[name]}" for name in sorted(counters)
                )
                parts.append(f"{section}[{inner}]")
            table += f"\nsynthesis caches: {'; '.join(parts)}"
        hosts = self.backend_stats.get("hosts", {})
        for label in sorted(hosts):
            h = hosts[label]
            table += (
                f"\nhost {label}: {h.get('workers', 0)} worker(s), "
                f"{h.get('completed', 0)} cell(s), "
                f"{h.get('steals', 0)} steal(s), "
                f"{h.get('lost', 0)} lost"
            )
        redispatched = self.backend_stats.get("redispatched", 0)
        if redispatched:
            table += (
                f"\nre-dispatched after worker loss: {redispatched} cell(s)"
            )
        baselines = self.baselines()
        if len(baselines) > 1:
            table += (
                f"\nNOTE: norm. CPU mixes per-cell baselines "
                f"({', '.join(baselines)}) — pin ScenarioMatrix.baseline "
                f"for comparable ratios"
            )
        if self.skipped:
            notes = "; ".join(
                f"{sid}: {', '.join(names)}"
                for sid, names in sorted(self.skipped.items())
            )
            table += f"\nskipped (infeasible/unsupported): {notes}"
        return table

    def __str__(self) -> str:
        return self.render()
