"""Scenario execution: one cell through the Session pipeline, or a whole
matrix on a pluggable execution backend.

Determinism contract: every random stream a scenario consumes derives from
labels hashed off the matrix seed (:func:`repro.rng.child_seed`), and
per-process caches (profiles, DP tables, hints) only memoise pure
functions of those seeds. Every backend (serial, static pool,
work-stealing) therefore produces bit-identical results — the property
``tests/test_scenarios.py`` pins across actual process boundaries — and a
:class:`~repro.scenarios.cache.CellCache` replay is byte-identical to a
cold run.
"""

from __future__ import annotations

import dataclasses
import functools
import heapq
import os
import time
import typing as _t

from ..api.session import Session
from ..errors import ExperimentError
from ..policies.base import SizingPolicy
from ..profiling.profiler import profile_workflow
from ..profiling.profiles import ProfileSet
from ..rng import child_seed
from ..runtime.driver import compare
from ..synthesis.budget import BudgetRange
from ..traces.workload import WorkloadConfig, generate_requests, iter_requests
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .backends import ExecutionBackend, resolve_backend
from .cache import (
    CellCache,
    add_stats,
    configure_persistent_caches,
    restore_persistent_caches,
    snapshot_persistent_caches,
    synthesis_cache_stats,
)
from .costs import CellCostModel
from ..cluster.faults import CLUSTER_FAULT_KINDS
from .matrix import Scenario, ScenarioMatrix
from .registry import scenario_workflow, workflow_epoch
from .report import CARRIED_EXTRAS, ScenarioResult, SweepReport

__all__ = [
    "SweepRunner",
    "CellOutcome",
    "evaluate_cell",
    "run_scenario",
    "scenario_requests",
    "iter_scenario_requests",
    "merge_tenant_streams",
]

#: Per-cell progress sink: called with one human-readable line as each
#: cell resolves (cache hit or completed evaluation).
ProgressCallback = _t.Callable[[str], None]


@functools.lru_cache(maxsize=16)
def _profiles_for(
    workflow: str, samples: int, profile_seed: int, epoch: int = 0
) -> ProfileSet:
    """One profiling campaign per (workflow, samples, seed), per process.

    ``epoch`` is the registry's re-registration counter for the name, so a
    swapped factory gets a fresh campaign without evicting other entries.
    """
    return profile_workflow(
        scenario_workflow(workflow), seed=profile_seed, samples=samples
    )


def merge_tenant_streams(
    streams: _t.Sequence[_t.Sequence[WorkflowRequest]],
) -> list[WorkflowRequest]:
    """Interleave per-tenant request streams into one arrival-ordered stream.

    The sort key is ``(arrival_ms, tenant index, request id)`` — total and
    deterministic even when streams share timestamps (constant arrivals).
    Requests are re-numbered in merged order.
    """
    tagged = [
        (req.arrival_ms, tenant, req.request_id, req)
        for tenant, stream in enumerate(streams)
        for req in stream
    ]
    tagged.sort(key=lambda item: item[:3])
    return [
        dataclasses.replace(req, request_id=i)
        for i, (_, _, _, req) in enumerate(tagged)
    ]


def scenario_requests(
    workflow: Workflow, scenario: Scenario, slo_ms: float
) -> list[WorkflowRequest]:
    """The scenario's request stream: per-tenant streams, arrival-merged.

    Each tenant draws from its own RNG stream derived off the scenario
    seed, so tenant counts change the mix without perturbing other cells.
    """
    streams = [
        generate_requests(
            workflow,
            WorkloadConfig(
                n_requests=scenario.n_requests,
                # A storm fault rewrites the arrival process; every other
                # fault (and None) serves the declared arrival verbatim.
                arrival=scenario.effective_arrival(),
                slo_ms=slo_ms,
            ),
            seed=child_seed(scenario.seed, "tenant", str(tenant)),
        )
        for tenant in range(scenario.tenants)
    ]
    return streams[0] if scenario.tenants == 1 else merge_tenant_streams(streams)


def iter_scenario_requests(
    workflow: Workflow, scenario: Scenario, slo_ms: float
) -> _t.Iterator[WorkflowRequest]:
    """Lazy variant of :func:`scenario_requests` for streaming cells.

    Yields the identical arrival-merged stream (same seeds, same merge
    order) without materialising it: per-tenant generators are heap-merged
    on the same ``(arrival_ms, tenant, request_id)`` key
    :func:`merge_tenant_streams` sorts by, which coincides with a stable
    merge because each tenant stream is already arrival-ordered.
    """
    def tenant_stream(tenant: int) -> _t.Iterator[WorkflowRequest]:
        return iter_requests(
            workflow,
            WorkloadConfig(
                n_requests=scenario.n_requests,
                arrival=scenario.effective_arrival(),
                slo_ms=slo_ms,
            ),
            seed=child_seed(scenario.seed, "tenant", str(tenant)),
        )

    if scenario.tenants == 1:
        yield from tenant_stream(0)
        return
    tagged = heapq.merge(
        *(
            ((req.arrival_ms, tenant, req.request_id, req) for req in stream)
            for tenant, stream in (
                (t, tenant_stream(t)) for t in range(scenario.tenants)
            )
        )
    )
    for i, (_, _, _, req) in enumerate(tagged):
        yield dataclasses.replace(req, request_id=i)


def _run_streaming_cell(
    session: Session,
    scenario: Scenario,
    slo_ms: float,
    suite: _t.Mapping[str, SizingPolicy],
) -> ScenarioResult:
    """Serve a streaming cell: aggregates only, no retained outcomes.

    Each policy re-generates the identical request stream from the cell
    seed (common random numbers without a shared materialised list).
    """
    backend = session.executor(scenario.executor)
    if not hasattr(backend, "run_streaming"):
        raise ExperimentError(
            f"streaming cell {scenario.scenario_id}: executor "
            f"{type(backend).__name__} has no streaming path (chain "
            f"workflows on the analytic backend only)"
        )
    results = {
        name: backend.run_streaming(
            policy, iter_scenario_requests(session.workflow, scenario, slo_ms)
        )
        for name, policy in suite.items()
    }
    baseline = scenario.baseline
    if baseline is None:
        baseline = "Optimal" if "Optimal" in results else next(iter(results))
    extras = {
        name: {
            key: float(res.extras[key])
            for key in CARRIED_EXTRAS
            if key in res.extras
        }
        for name, res in results.items()
    }
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        workflow=scenario.workflow,
        arrival=scenario.arrival.label,
        slo_scale=scenario.slo_scale,
        tenants=scenario.tenants,
        slo_ms=slo_ms,
        seed=scenario.seed,
        baseline=baseline,
        executor=f"{type(backend).__name__}[streaming]",
        table=compare(results, baseline=baseline),
        extras={name: vals for name, vals in extras.items() if vals},
    )


def run_scenario(scenario: Scenario) -> ScenarioResult | None:
    """Evaluate one scenario cell end to end via :meth:`Session.compare`.

    Returns ``None`` when no requested policy can be built for this cell
    (the sweep runner then reports the whole cell as skipped).
    """
    workflow = scenario_workflow(scenario.workflow)
    # Microsecond rounding so scale factors derived from absolute SLOs
    # round-trip exactly (3000 * (3130/3000) = 3129.9999999999995 would
    # otherwise shift the SLO by an epsilon and truncate the budget tmax
    # by a whole millisecond).
    slo_ms = round(float(workflow.slo_ms) * scenario.slo_scale, 6)
    budget = None
    if scenario.budget_ms is not None:
        tmin, tmax = scenario.budget_ms
        # Pinned (paper) range; a looser SLO extends tmax so the DP can
        # explore up to the deadline — ia_setup/va_setup semantics.
        budget = BudgetRange(int(tmin), max(int(tmax), int(slo_ms)))
    executor_kwargs: dict[str, _t.Any] = {}
    if scenario.cluster is not None:
        executor_kwargs["config"] = scenario.cluster
    if (
        scenario.faults is not None
        and scenario.faults.kind in CLUSTER_FAULT_KINDS
    ):
        # Cluster-side faults ship to the executor factory with their own
        # derived seed; the request-stream seed stays fault-independent so
        # the faulted cell replays its fault-free sibling's workload.
        executor_kwargs["faults"] = scenario.faults
        executor_kwargs["fault_seed"] = child_seed(
            scenario.seed, "faults", scenario.faults.label
        )
    session = Session(
        workflow,
        slo_ms=slo_ms,
        budget=budget,
        samples=scenario.samples,
        seed=scenario.profile_seed,
        profiles=_profiles_for(
            scenario.workflow, scenario.samples, scenario.profile_seed,
            workflow_epoch(scenario.workflow),
        ),
        executor=scenario.executor,
        executor_kwargs=executor_kwargs,
    )
    # Dead-cell detection is scoped to suite assembly only: a cell dies
    # when no requested policy is buildable here (chain-only suite on a
    # DAG topology) or the pinned baseline is infeasible. Everything else
    # — serving, report construction — propagates, so genuine errors are
    # never misreported as "skipped". Scenario.__post_init__ already
    # rejected unknown policy/baseline names, so a dead cell is never a
    # typo.
    try:
        suite = session.suite(list(scenario.policies))
    except ExperimentError:
        return None
    if scenario.baseline is not None and scenario.baseline not in suite:
        return None
    if scenario.streaming:
        return _run_streaming_cell(session, scenario, slo_ms, suite)
    if scenario.fleet is not None:
        # Fleet cells route per-region streams through the fleet runner
        # (lazy import: repro.fleet is imported by matrix construction,
        # but the runner half pulls scenario modules back in).
        from ..fleet.runner import run_fleet_scenario

        return run_fleet_scenario(session, scenario, slo_ms, suite)
    requests = scenario_requests(session.workflow, scenario, slo_ms)
    report = session.compare(
        requests=requests,
        baseline=scenario.baseline,
        suite=suite,
    )
    # Per-policy platform/policy extras — only the deterministic keys, so
    # the serial-vs-pool bit-identity of the JSON payload survives
    # (timing diagnostics like synthesis_seconds stay out).
    extras = {
        name: {
            key: float(res.extras[key])
            for key in CARRIED_EXTRAS
            if key in res.extras
        }
        for name, res in report.results.items()
    }
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        workflow=scenario.workflow,
        arrival=scenario.arrival.label,
        slo_scale=scenario.slo_scale,
        tenants=scenario.tenants,
        slo_ms=slo_ms,
        seed=scenario.seed,
        baseline=report.baseline,
        executor=report.executor,
        table=report.table,
        extras={name: vals for name, vals in extras.items() if vals},
    )


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """What one evaluated cell ships back across the process boundary.

    ``result`` is the deterministic payload; everything else is
    diagnostics (wall time, per-cell deltas of the synthesis memo
    counters) that stays out of the byte-stable report JSON.
    """

    result: ScenarioResult | None
    wall_seconds: float
    cache_stats: dict[str, dict[str, int]]


def evaluate_cell(scenario: Scenario) -> CellOutcome:
    """Run one cell with error attribution and cache accounting.

    Backends dispatch this (it is top-level, hence picklable). Any
    exception escaping :func:`run_scenario` is re-raised as an
    :class:`ExperimentError` naming the cell — a pooled sweep otherwise
    reports a bare worker traceback with no hint of *which* of hundreds
    of cells died. The original error type and message are embedded
    because exception chains do not survive the process boundary intact.
    """
    before = synthesis_cache_stats()
    start = time.perf_counter()
    try:
        result = run_scenario(scenario)
    except Exception as exc:
        raise ExperimentError(
            f"scenario {scenario.scenario_id} failed "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    wall = time.perf_counter() - start
    after = synthesis_cache_stats()
    delta = {
        section: {
            name: after[section][name] - counters[name]
            for name in counters
        }
        for section, counters in before.items()
    }
    return CellOutcome(result=result, wall_seconds=wall, cache_stats=delta)


class SweepRunner:
    """Executes a :class:`ScenarioMatrix` on a pluggable execution backend.

    ``backend`` names the scheduling strategy (``"serial"``, ``"pool"``,
    ``"workstealing"``, or any :func:`~repro.scenarios.backends.
    register_backend` registration — an :class:`ExecutionBackend` instance
    also works). ``None`` keeps the historical rule: serial when
    ``max_workers`` <= 1, the static pool otherwise. Results are
    bit-identical across backends and worker counts — only wall time
    changes.

    ``cache_dir`` enables content-addressed persistence: per-cell results
    (skipping already-computed cells on re-runs and overlapping sweeps)
    plus disk layers behind the DP/hints memos shared by every worker.
    ``progress`` receives one line per resolved cell.

    ``backend_options`` are extra constructor options for a string-named
    backend (e.g. ``{"hosts": "local:2,big:8"}`` for ``distributed``);
    like ``cost_model`` and ``cache_dir`` they pass through
    :func:`~repro.scenarios.backends.resolve_backend`'s signature
    filtering, so options a backend doesn't declare are ignored.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        mp_context: _t.Any = None,
        backend: "str | ExecutionBackend | None" = None,
        cache_dir: str | os.PathLike[str] | None = None,
        progress: ProgressCallback | None = None,
        backend_options: _t.Mapping[str, _t.Any] | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self.mp_context = mp_context
        self.backend = backend
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.progress = progress
        self.backend_options = dict(backend_options or {})

    def _emit(
        self,
        scenario: Scenario,
        index: int,
        total: int,
        wall: float,
        cache_hit: bool,
    ) -> None:
        if self.progress is None:
            return
        source = "cache hit" if cache_hit else f"{wall:.2f} s"
        self.progress(
            f"[{index + 1}/{total}] {scenario.scenario_id}: {source}"
        )

    def run(self, matrix: ScenarioMatrix) -> SweepReport:
        """Evaluate every cell and aggregate one :class:`SweepReport`.

        Cell order (and thus the report) is the matrix expansion order
        regardless of which worker finishes first. Cached cells are
        resolved in the parent before anything is dispatched, so a fully
        warm sweep performs zero evaluations.
        """
        scenarios = matrix.expand()
        total = len(scenarios)
        start = time.perf_counter()
        cache = CellCache(self.cache_dir) if self.cache_dir else None
        # Calibrated dispatch costs ride on the same cache dir: walls
        # recorded as cells complete feed later sweeps' work-stealing
        # order. Ordering-only, so this cannot affect results.
        cost_model = (
            CellCostModel(os.path.join(self.cache_dir, "costs"))
            if self.cache_dir
            else None
        )

        raw: list[ScenarioResult | None] = [None] * total
        pending: list[tuple[int, Scenario]] = []
        resolved = 0
        if cache is not None:
            for i, scenario in enumerate(scenarios):
                hit = cache.lookup(scenario)
                if hit is not None:
                    raw[i] = hit.result
                    self._emit(scenario, resolved, total, 0.0, True)
                    resolved += 1
                else:
                    pending.append((i, scenario))
        else:
            pending = list(enumerate(scenarios))

        # Resolve against the *pending* cell count so the default rule
        # keeps its historical shape: a one-cell dispatch (tiny matrix,
        # nearly-warm cache) runs in-process instead of paying a pool
        # spawn for zero parallelism. Explicitly named backends are
        # honoured as given.
        effective = min(self.max_workers, len(pending)) if pending else 1
        backend = resolve_backend(
            self.backend, max_workers=effective, mp_context=self.mp_context,
            cost_model=cost_model, cache_dir=self.cache_dir,
            **self.backend_options,
        )
        synth_stats: dict[str, dict[str, int]] = {}
        if pending:
            def _on_complete(pos: int, outcome: CellOutcome) -> None:
                nonlocal resolved
                _, scenario = pending[pos]
                # Store as cells complete, not after the whole run: one
                # failing cell must not discard the finished work of
                # every other cell.
                if cache is not None:
                    cache.store(scenario, outcome.result)
                if cost_model is not None:
                    cost_model.record(scenario, outcome.wall_seconds)
                self._emit(
                    scenario, resolved, total, outcome.wall_seconds, False
                )
                resolved += 1

            # The parent evaluates serial cells in-process, so it needs
            # the disk layers too; pool workers attach via the
            # initializer. Restore the caller's configuration afterwards
            # — a sweep must not clobber dirs installed directly through
            # set_dp_cache_dir/set_hints_cache_dir, nor leave the memos
            # pointed at a dir the caller may delete.
            saved = snapshot_persistent_caches()
            if self.cache_dir:
                configure_persistent_caches(self.cache_dir)
            try:
                outcomes = backend.run(
                    [scenario for _, scenario in pending],
                    evaluate_cell,
                    on_complete=_on_complete,
                    initializer=(
                        configure_persistent_caches if self.cache_dir else None
                    ),
                    initargs=(self.cache_dir,),
                )
            finally:
                restore_persistent_caches(saved)
            for (i, scenario), outcome in zip(pending, outcomes):
                raw[i] = outcome.result
                add_stats(synth_stats, outcome.cache_stats)
        wall = time.perf_counter() - start

        results: list[ScenarioResult] = []
        skipped: dict[str, list[str]] = {}
        for scenario, result in zip(scenarios, raw):
            if result is None:
                # Dead cell: every requested policy was infeasible or
                # unsupported there.
                skipped[scenario.scenario_id] = list(scenario.policies)
                continue
            results.append(result)
            missing = [p for p in scenario.policies if p not in result.table]
            if missing:
                skipped[scenario.scenario_id] = missing
        if not results:
            raise ExperimentError(
                f"no scenario cell could build any of {list(matrix.policies)} "
                f"— every cell was skipped: {sorted(skipped)}"
            )
        # Backends with scheduling diagnostics (the distributed fabric's
        # per-host throughput/steal/loss counters) surface them in the
        # rendered report; like wall time they stay out of the JSON.
        stats_fn = getattr(backend, "stats", None)
        return SweepReport(
            results=results,
            seed=matrix.seed,
            wall_seconds=wall,
            max_workers=backend.workers_for(len(pending)),
            skipped=skipped,
            backend=backend.name,
            cell_cache=cache.stats() if cache is not None else {},
            synthesis_cache=synth_stats,
            backend_stats=stats_fn() if callable(stats_fn) else {},
        )
