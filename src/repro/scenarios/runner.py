"""Scenario execution: one cell through the Session pipeline, or a whole
matrix on a process pool.

Determinism contract: every random stream a scenario consumes derives from
labels hashed off the matrix seed (:func:`repro.rng.child_seed`), and
per-process caches (profiles, DP tables, hints) only memoise pure
functions of those seeds. A pooled sweep therefore produces bit-identical
results to a serial one — the property ``tests/test_scenarios.py`` pins
across actual process boundaries.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import functools
import os
import time
import typing as _t

from ..api.session import Session
from ..errors import ExperimentError
from ..profiling.profiler import profile_workflow
from ..profiling.profiles import ProfileSet
from ..rng import child_seed
from ..synthesis.budget import BudgetRange
from ..traces.workload import WorkloadConfig, generate_requests
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .matrix import Scenario, ScenarioMatrix
from .registry import scenario_workflow, workflow_epoch
from .report import CARRIED_EXTRAS, ScenarioResult, SweepReport

__all__ = [
    "SweepRunner",
    "run_scenario",
    "scenario_requests",
    "merge_tenant_streams",
]


@functools.lru_cache(maxsize=16)
def _profiles_for(
    workflow: str, samples: int, profile_seed: int, epoch: int = 0
) -> ProfileSet:
    """One profiling campaign per (workflow, samples, seed), per process.

    ``epoch`` is the registry's re-registration counter for the name, so a
    swapped factory gets a fresh campaign without evicting other entries.
    """
    return profile_workflow(
        scenario_workflow(workflow), seed=profile_seed, samples=samples
    )


def merge_tenant_streams(
    streams: _t.Sequence[_t.Sequence[WorkflowRequest]],
) -> list[WorkflowRequest]:
    """Interleave per-tenant request streams into one arrival-ordered stream.

    The sort key is ``(arrival_ms, tenant index, request id)`` — total and
    deterministic even when streams share timestamps (constant arrivals).
    Requests are re-numbered in merged order.
    """
    tagged = [
        (req.arrival_ms, tenant, req.request_id, req)
        for tenant, stream in enumerate(streams)
        for req in stream
    ]
    tagged.sort(key=lambda item: item[:3])
    return [
        dataclasses.replace(req, request_id=i)
        for i, (_, _, _, req) in enumerate(tagged)
    ]


def scenario_requests(
    workflow: Workflow, scenario: Scenario, slo_ms: float
) -> list[WorkflowRequest]:
    """The scenario's request stream: per-tenant streams, arrival-merged.

    Each tenant draws from its own RNG stream derived off the scenario
    seed, so tenant counts change the mix without perturbing other cells.
    """
    streams = [
        generate_requests(
            workflow,
            WorkloadConfig(
                n_requests=scenario.n_requests,
                arrival=scenario.arrival,
                slo_ms=slo_ms,
            ),
            seed=child_seed(scenario.seed, "tenant", str(tenant)),
        )
        for tenant in range(scenario.tenants)
    ]
    return streams[0] if scenario.tenants == 1 else merge_tenant_streams(streams)


def run_scenario(scenario: Scenario) -> ScenarioResult | None:
    """Evaluate one scenario cell end to end via :meth:`Session.compare`.

    Returns ``None`` when no requested policy can be built for this cell
    (the sweep runner then reports the whole cell as skipped).
    """
    workflow = scenario_workflow(scenario.workflow)
    # Microsecond rounding so scale factors derived from absolute SLOs
    # round-trip exactly (3000 * (3130/3000) = 3129.9999999999995 would
    # otherwise shift the SLO by an epsilon and truncate the budget tmax
    # by a whole millisecond).
    slo_ms = round(float(workflow.slo_ms) * scenario.slo_scale, 6)
    budget = None
    if scenario.budget_ms is not None:
        tmin, tmax = scenario.budget_ms
        # Pinned (paper) range; a looser SLO extends tmax so the DP can
        # explore up to the deadline — ia_setup/va_setup semantics.
        budget = BudgetRange(int(tmin), max(int(tmax), int(slo_ms)))
    executor_kwargs: dict[str, _t.Any] = {}
    if scenario.cluster is not None:
        executor_kwargs["config"] = scenario.cluster
    session = Session(
        workflow,
        slo_ms=slo_ms,
        budget=budget,
        samples=scenario.samples,
        seed=scenario.profile_seed,
        profiles=_profiles_for(
            scenario.workflow, scenario.samples, scenario.profile_seed,
            workflow_epoch(scenario.workflow),
        ),
        executor=scenario.executor,
        executor_kwargs=executor_kwargs,
    )
    # Dead-cell detection is scoped to suite assembly only: a cell dies
    # when no requested policy is buildable here (chain-only suite on a
    # DAG topology) or the pinned baseline is infeasible. Everything else
    # — serving, report construction — propagates, so genuine errors are
    # never misreported as "skipped". Scenario.__post_init__ already
    # rejected unknown policy/baseline names, so a dead cell is never a
    # typo.
    try:
        suite = session.suite(list(scenario.policies))
    except ExperimentError:
        return None
    if scenario.baseline is not None and scenario.baseline not in suite:
        return None
    requests = scenario_requests(session.workflow, scenario, slo_ms)
    report = session.compare(
        requests=requests,
        baseline=scenario.baseline,
        suite=suite,
    )
    # Per-policy platform/policy extras — only the deterministic keys, so
    # the serial-vs-pool bit-identity of the JSON payload survives
    # (timing diagnostics like synthesis_seconds stay out).
    extras = {
        name: {
            key: float(res.extras[key])
            for key in CARRIED_EXTRAS
            if key in res.extras
        }
        for name, res in report.results.items()
    }
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        workflow=scenario.workflow,
        arrival=scenario.arrival.label,
        slo_scale=scenario.slo_scale,
        tenants=scenario.tenants,
        slo_ms=slo_ms,
        seed=scenario.seed,
        baseline=report.baseline,
        executor=report.executor,
        table=report.table,
        extras={name: vals for name, vals in extras.items() if vals},
    )


class SweepRunner:
    """Executes a :class:`ScenarioMatrix` serially or on a process pool.

    ``max_workers`` <= 1 runs in-process; anything larger fans cells out to
    a ``concurrent.futures.ProcessPoolExecutor`` (capped at the cell
    count). ``mp_context`` selects the multiprocessing start method —
    results are identical either way, only wall time changes.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        mp_context: _t.Any = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self.mp_context = mp_context

    def run(self, matrix: ScenarioMatrix) -> SweepReport:
        """Evaluate every cell and aggregate one :class:`SweepReport`.

        Cell order (and thus the report) is the matrix expansion order
        regardless of which worker finishes first.
        """
        scenarios = matrix.expand()
        workers = min(self.max_workers, len(scenarios))
        start = time.perf_counter()
        if workers <= 1:
            raw = [run_scenario(s) for s in scenarios]
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=self.mp_context
            ) as pool:
                raw = list(pool.map(run_scenario, scenarios))
        wall = time.perf_counter() - start
        results: list[ScenarioResult] = []
        skipped: dict[str, list[str]] = {}
        for scenario, result in zip(scenarios, raw):
            if result is None:
                # Dead cell: every requested policy was infeasible or
                # unsupported there.
                skipped[scenario.scenario_id] = list(scenario.policies)
                continue
            results.append(result)
            missing = [p for p in scenario.policies if p not in result.table]
            if missing:
                skipped[scenario.scenario_id] = missing
        if not results:
            raise ExperimentError(
                f"no scenario cell could build any of {list(matrix.policies)} "
                f"— every cell was skipped: {sorted(skipped)}"
            )
        return SweepReport(
            results=results,
            seed=matrix.seed,
            wall_seconds=wall,
            max_workers=workers,
            skipped=skipped,
        )
