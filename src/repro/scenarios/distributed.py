"""Distributed sweep fabric: a coordinator driving per-host worker agents.

The ``distributed`` execution backend scales a sweep past one machine
while keeping every contract the single-host backends pin:

* **Bit-identical reassembly.** Cells ship to workers as pickled
  :class:`~repro.scenarios.matrix.Scenario` specs over the length-prefixed
  socket protocol (:mod:`repro.scenarios.wire`), outcomes stream back in
  completion order, and the result list is reassembled in submission
  (expansion) order — so the :class:`~repro.scenarios.report.SweepReport`
  JSON matches ``serial``/``pool``/``workstealing`` byte for byte.
* **Shared resume log.** The content-addressed
  :class:`~repro.scenarios.cache.CellCache` is the fabric's ledger: the
  runner skips cached cells before anything is dispatched, and workers
  look up / write through either a shared cache directory (``shared``
  mode, same filesystem on every host) or a GET/PUT exchange over the
  task socket (``protocol`` mode, no shared filesystem needed). A killed
  10k-cell sweep restarts and evaluates only the remainder, and no host
  re-runs a cell another host already stored.
* **Calibrated scheduling.** The runner's
  :class:`~repro.scenarios.costs.CellCostModel` estimates order the
  initial per-host queues (longest-processing-time assignment weighted by
  each host's slot count, most-expensive-first within a queue), and the
  pull-based loop lets a drained host *steal* from the host with the most
  remaining estimated work — calibration orders dispatch, never results.
* **Loss tolerance.** A dead worker's in-flight cells are re-queued and
  re-dispatched (bounded by ``max_redispatch``); per-cell worker errors
  arrive as the same cell-naming :class:`~repro.errors.ExperimentError`
  chain the pool backends raise, and the first one fails the sweep fast
  — remaining workers drain to an orderly stop instead of chewing
  through the queue.

Hosts are declared as ``host[:nproc]`` specs — ``local:4`` socket-launches
four slots on this machine (tests, CI, single-node speedups), anything
else is launched over SSH (``ssh HOST python3 -m repro.scenarios.worker
--connect ...``). Per-host throughput/steal/loss counters surface in
``SweepReport.backend_stats`` via :meth:`DistributedBackend.stats`.
"""

from __future__ import annotations

import collections
import dataclasses
import hmac
import os
import queue as _queue
import socket
import subprocess
import sys
import threading
import time
import typing as _t

from ..errors import ExperimentError
from .backends import CompletionCallback, Initializer, register_backend
from .wire import AUTH_ENV, WIRE_VERSION, auth_digest, recv_msg, send_msg

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .matrix import Scenario

__all__ = ["DistributedBackend", "HostSpec", "parse_hosts"]

#: Host names that mean "socket-launch on this machine" (no SSH).
LOCAL_HOSTS = ("local", "localhost", "127.0.0.1")


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """One parsed ``host[:nproc]`` entry of the fleet declaration."""

    label: str
    host: str
    nproc: int = 1

    @property
    def is_local(self) -> bool:
        return self.host in LOCAL_HOSTS


def parse_hosts(hosts: "str | _t.Sequence[str]") -> tuple[HostSpec, ...]:
    """Parse a fleet declaration into :class:`HostSpec` entries.

    Accepts a comma-separated string or a sequence of ``host[:nproc]``
    tokens. ``local`` (also ``localhost``/``127.0.0.1``) launches workers
    on this machine without SSH. Repeated hosts get ``#2``, ``#3``, ...
    label suffixes so per-host stats stay distinguishable.
    """
    if isinstance(hosts, str):
        tokens = [t.strip() for t in hosts.split(",") if t.strip()]
    else:
        tokens = [str(t).strip() for t in hosts if str(t).strip()]
    if not tokens:
        raise ExperimentError("empty distributed hosts spec")
    specs: list[HostSpec] = []
    seen: collections.Counter[str] = collections.Counter()
    for token in tokens:
        host, sep, nproc_s = token.partition(":")
        if not host:
            raise ExperimentError(f"bad host spec {token!r} (want host[:nproc])")
        nproc = 1
        if sep:
            try:
                nproc = int(nproc_s)
            except ValueError:
                raise ExperimentError(
                    f"bad worker count in host spec {token!r}"
                ) from None
            if nproc < 1:
                raise ExperimentError(
                    f"host spec {token!r}: nproc must be >= 1"
                )
        seen[host] += 1
        label = host if seen[host] == 1 else f"{host}#{seen[host]}"
        specs.append(HostSpec(label=label, host=host, nproc=nproc))
    return tuple(specs)


@dataclasses.dataclass
class _HostState:
    """Coordinator-side ledger for one declared host."""

    spec: HostSpec
    queue: collections.deque = dataclasses.field(
        default_factory=collections.deque
    )
    queued_cost: float = 0.0
    workers: int = 0
    ever_connected: int = 0
    completed: int = 0
    steals: int = 0
    lost: int = 0
    wall_seconds: float = 0.0
    cache_hits: int = 0


class _RunState:
    """Everything one ``run()`` shares between handler threads."""

    def __init__(
        self,
        items: _t.Sequence[_t.Any],
        costs: _t.Sequence[float],
        specs: _t.Sequence[HostSpec],
        idle_delay: float,
    ) -> None:
        self.items = items
        self.costs = costs
        self.hosts = {spec.label: _HostState(spec) for spec in specs}
        self.idle_delay = idle_delay
        self.lock = threading.Lock()
        self.events: _queue.Queue = _queue.Queue()
        self.remaining = len(items)
        self.redispatch: collections.Counter[int] = collections.Counter()
        self.redispatched = 0
        self.error: BaseException | None = None
        self.stop = False
        self.connected = threading.Event()
        self.cache: _t.Any = None
        self.cache_gets = 0
        self.cache_get_hits = 0
        self.cache_puts = 0
        self.setup: dict[str, _t.Any] = {}

    def fail(self, exc: BaseException) -> None:
        # First error wins; stopping gates further dispatch so workers
        # drain to ("done",) instead of evaluating the rest of the queue.
        if self.error is None:
            self.error = exc
        self.stop = True


def _src_dir() -> str:
    """The directory containing the ``repro`` package, for worker PYTHONPATH."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@register_backend("distributed")
class DistributedBackend:
    """Multi-host coordinator backend (see the module docstring).

    ``hosts`` takes the fleet declaration (:func:`parse_hosts` format).
    ``cache_dir``/``cache_mode`` configure the shared resume log — the
    sweep runner passes its own cache dir through automatically, and the
    mode defaults to ``shared`` whenever a cache dir exists (pass
    ``"protocol"`` when worker hosts cannot see the coordinator's
    filesystem). ``launch=False`` skips launching agents: workers joined
    externally (a manually started fleet, or in-process test threads via
    the ``on_listen`` hook) are adopted by label.

    Note the runner's ``--jobs``/``max_workers`` knob does not cap this
    backend — parallelism is the sum of ``nproc`` slots in ``hosts``.
    """

    name = "distributed"

    def __init__(
        self,
        hosts: "str | _t.Sequence[str]" = "local",
        cost_model: _t.Any = None,
        cache_dir: "str | os.PathLike[str] | None" = None,
        cache_mode: str | None = None,
        python: str | None = None,
        ssh_command: _t.Sequence[str] = ("ssh",),
        bind: str | None = None,
        advertise: str | None = None,
        connect_timeout: float = 20.0,
        idle_delay: float = 0.05,
        max_redispatch: int = 2,
        launch: bool = True,
        on_listen: _t.Callable[[str, int], None] | None = None,
        auth_token: str | None = None,
    ) -> None:
        self.specs = parse_hosts(hosts)
        if cache_mode not in (None, "shared", "protocol"):
            raise ExperimentError(
                f"unknown distributed cache mode {cache_mode!r} "
                f"(use 'shared' or 'protocol')"
            )
        self.cost_model = cost_model
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.cache_mode = cache_mode
        self.python = python
        self.ssh_command = tuple(ssh_command)
        self.bind = bind
        self.advertise = advertise
        self.connect_timeout = float(connect_timeout)
        self.idle_delay = float(idle_delay)
        self.max_redispatch = int(max_redispatch)
        self.launch = launch
        self.on_listen = on_listen
        # A set token turns the hello handshake into an HMAC challenge:
        # every connecting worker must prove it holds the same secret
        # before the pickled setup payload is sent (pickles execute code
        # on load — never deserialise for an unauthenticated peer).
        if auth_token is None:
            auth_token = os.environ.get(AUTH_ENV) or None
        self.auth_token = auth_token
        self._stats: dict[str, _t.Any] = {}

    # -- registry surface ----------------------------------------------------
    def workers_for(self, n_tasks: int) -> int:
        slots = sum(spec.nproc for spec in self.specs)
        return max(1, min(slots, n_tasks)) if n_tasks else 1

    def stats(self) -> dict[str, _t.Any]:
        """Per-host scheduling diagnostics of the last :meth:`run`."""
        return dict(self._stats)

    # -- scheduling ----------------------------------------------------------
    def _costs(self, items: _t.Sequence[_t.Any]) -> list[float]:
        if self.cost_model is not None:
            try:
                return [float(c) for c in self.cost_model.estimate_all(items)]
            except Exception:
                pass  # calibration is advisory; fall back to the heuristic
        out: list[float] = []
        for item in items:
            try:
                out.append(float(item.cost_estimate()))
            except Exception:
                out.append(1.0)
        return out

    def _assign(self, st: _RunState) -> None:
        """LPT assignment: costliest cells first, to the least-loaded host.

        Load is normalised by slot count so ``big:4`` absorbs four times
        the work of ``small:1``. Each host queue ends up in descending
        cost order, so ``popleft`` is most-expensive-first dispatch.
        """
        order = sorted(
            range(len(st.items)), key=lambda pos: (-st.costs[pos], pos)
        )
        loads = {label: 0.0 for label in st.hosts}
        for pos in order:
            label = min(
                st.hosts,
                key=lambda lb: (loads[lb] / st.hosts[lb].spec.nproc, lb),
            )
            host = st.hosts[label]
            host.queue.append(pos)
            host.queued_cost += st.costs[pos]
            loads[label] += st.costs[pos]

    def _pick(self, st: _RunState, host: _HostState) -> int | None:
        """Next position for a worker of ``host`` (caller holds the lock).

        Own queue first; a drained host steals from the victim with the
        most remaining estimated work, which is exactly the host whose
        straggler risk is highest.
        """
        if host.queue:
            pos = host.queue.popleft()
            host.queued_cost -= st.costs[pos]
            return pos
        victims = [h for h in st.hosts.values() if h.queue]
        if not victims:
            return None
        victim = max(victims, key=lambda h: (h.queued_cost, h.spec.label))
        pos = victim.queue.popleft()
        victim.queued_cost -= st.costs[pos]
        host.steals += 1
        return pos

    def _requeue(self, st: _RunState, host: _HostState, pos: int) -> None:
        """Return a dead worker's in-flight cell to its host queue."""
        st.redispatch[pos] += 1
        st.redispatched += 1
        if st.redispatch[pos] > self.max_redispatch:
            name = getattr(st.items[pos], "scenario_id", None) or f"task {pos}"
            st.fail(
                ExperimentError(
                    f"{name} lost its worker {st.redispatch[pos]} time(s) "
                    f"(max_redispatch={self.max_redispatch}); giving up"
                )
            )
            st.events.put(("failed", None, None))
            return
        host.queue.appendleft(pos)
        host.queued_cost += st.costs[pos]

    # -- connection handling -------------------------------------------------
    def _serve_connection(self, st: _RunState, conn: socket.socket) -> None:
        host: _HostState | None = None
        in_flight: int | None = None
        orderly = False
        try:
            hello = recv_msg(conn)
            if not (
                isinstance(hello, tuple)
                and len(hello) == 4
                and hello[0] == "hello"
            ):
                send_msg(conn, ("reject", "malformed hello"))
                return
            _, version, label, _pid = hello
            if version != WIRE_VERSION:
                send_msg(
                    conn,
                    (
                        "reject",
                        f"wire version {version!r}; coordinator speaks "
                        f"{WIRE_VERSION}",
                    ),
                )
                return
            if self.auth_token is not None:
                # Fresh nonce per connection; the worker must answer with
                # the HMAC of it under the shared secret before anything
                # else (registration, setup pickle) happens.
                nonce = os.urandom(16).hex()
                send_msg(conn, ("challenge", nonce))
                answer = recv_msg(conn)
                if not (
                    isinstance(answer, tuple)
                    and len(answer) == 2
                    and answer[0] == "auth"
                    and isinstance(answer[1], str)
                    and hmac.compare_digest(
                        answer[1], auth_digest(self.auth_token, nonce)
                    )
                ):
                    send_msg(
                        conn,
                        (
                            "reject",
                            "authentication failed: token does not match "
                            "the coordinator's (check --auth-token / "
                            f"${AUTH_ENV})",
                        ),
                    )
                    return
            with st.lock:
                host = st.hosts.get(label)
                if host is None:
                    # Externally-joined worker under an undeclared label
                    # (launch=False fleets): adopt it with an empty queue —
                    # it lives entirely off stealing.
                    host = st.hosts[label] = _HostState(
                        HostSpec(label=label, host=label, nproc=1)
                    )
                host.workers += 1
                host.ever_connected += 1
            st.connected.set()
            send_msg(conn, ("setup", st.setup))
            while True:
                msg = recv_msg(conn)
                if msg is None:
                    return
                kind = msg[0]
                if kind == "next":
                    with st.lock:
                        if st.stop or st.remaining == 0:
                            reply: tuple = ("done",)
                            orderly = True
                        else:
                            pos = self._pick(st, host)
                            if pos is None:
                                reply = ("idle", st.idle_delay)
                            else:
                                in_flight = pos
                                reply = ("task", pos, st.items[pos])
                    send_msg(conn, reply)
                    if orderly:
                        return
                elif kind == "result":
                    _, pos, outcome, was_hit = msg
                    in_flight = None
                    with st.lock:
                        st.remaining -= 1
                        host.completed += 1
                        host.wall_seconds += float(
                            getattr(outcome, "wall_seconds", 0.0) or 0.0
                        )
                        if was_hit:
                            host.cache_hits += 1
                    st.events.put(("result", pos, outcome))
                elif kind == "error":
                    _, pos, exc = msg
                    in_flight = None
                    with st.lock:
                        st.fail(
                            exc
                            if isinstance(exc, BaseException)
                            else ExperimentError(str(exc))
                        )
                    st.events.put(("failed", None, None))
                elif kind == "cache_get":
                    _, pos = msg
                    hit = (
                        st.cache.lookup(st.items[pos])
                        if st.cache is not None
                        else None
                    )
                    with st.lock:
                        st.cache_gets += 1
                        if hit is not None:
                            st.cache_get_hits += 1
                    send_msg(conn, ("cache", hit))
                elif kind == "cache_put":
                    _, pos, result = msg
                    if st.cache is not None:
                        st.cache.store(st.items[pos], result)
                    with st.lock:
                        st.cache_puts += 1
                    send_msg(conn, ("ok",))
                else:
                    send_msg(conn, ("reject", f"unknown message {kind!r}"))
                    return
        except (ConnectionError, OSError):
            pass  # worker vanished; loss accounting below
        except Exception as exc:  # defensive: a handler must never die silently
            with st.lock:
                st.fail(exc)
            st.events.put(("failed", None, None))
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if host is not None:
                with st.lock:
                    host.workers -= 1
                    if not orderly and not st.stop:
                        host.lost += 1
                        if in_flight is not None:
                            self._requeue(st, host, in_flight)
            # Wake the main loop so health checks / completion re-evaluate.
            st.events.put(("tick", None, None))

    # -- worker launching ----------------------------------------------------
    def launch_argv(self, spec: HostSpec, port: int) -> list[str]:
        """The launch command for one host's agent (unit-testable)."""
        python = self.python or (
            sys.executable if spec.is_local else "python3"
        )
        connect_host = (
            "127.0.0.1"
            if spec.is_local
            else (self.advertise or socket.gethostname())
        )
        worker = [
            python, "-m", "repro.scenarios.worker",
            "--connect", f"{connect_host}:{port}",
            "--label", spec.label,
            "--nproc", str(spec.nproc),
            "--timeout", f"{self.connect_timeout:g}",
        ]
        if self.auth_token is not None:
            worker += ["--auth-token", self.auth_token]
        if spec.is_local:
            return worker
        return [*self.ssh_command, spec.host, *worker]

    def _launch(self, spec: HostSpec, port: int) -> subprocess.Popen:
        argv = self.launch_argv(spec, port)
        env = None
        if spec.is_local:
            # The agent must import repro even when the coordinator runs
            # from a source tree with a relative PYTHONPATH and a
            # different cwd.
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (_src_dir(), env.get("PYTHONPATH")) if p
            )
        return subprocess.Popen(argv, env=env)

    # -- health --------------------------------------------------------------
    def _check_health(
        self,
        st: _RunState,
        procs: _t.Sequence[subprocess.Popen],
        deadline: float,
    ) -> None:
        with st.lock:
            if st.remaining == 0 or st.error is not None:
                return
            live = sum(h.workers for h in st.hosts.values())
            ever = sum(h.ever_connected for h in st.hosts.values())
            if live > 0:
                return
            if ever == 0:
                if time.monotonic() < deadline:
                    return
                st.fail(
                    ExperimentError(
                        f"distributed backend: no worker connected within "
                        f"{self.connect_timeout:.0f}s "
                        f"(hosts: {[s.label for s in self.specs]})"
                    )
                )
                st.events.put(("failed", None, None))
                return
            if any(proc.poll() is None for proc in procs):
                return  # a launched agent is still alive and may (re)connect
            st.fail(
                ExperimentError(
                    f"distributed backend: all workers exited with "
                    f"{st.remaining} cell(s) unfinished"
                )
            )
            st.events.put(("failed", None, None))

    # -- the run -------------------------------------------------------------
    def run(
        self,
        scenarios: _t.Sequence["Scenario"],
        fn: _t.Callable[["Scenario"], _t.Any],
        on_complete: CompletionCallback | None = None,
        initializer: Initializer | None = None,
        initargs: tuple = (),
    ) -> list[_t.Any]:
        if not scenarios:
            return []
        items = list(scenarios)
        st = _RunState(items, self._costs(items), self.specs, self.idle_delay)
        cache_mode = self.cache_mode
        if cache_mode is None and self.cache_dir:
            cache_mode = "shared"
        if cache_mode is not None and not self.cache_dir:
            raise ExperimentError(
                f"distributed cache mode {cache_mode!r} needs a cache dir"
            )
        if cache_mode == "protocol":
            from .cache import CellCache

            st.cache = CellCache(self.cache_dir)
        st.setup = {
            "fn": fn,
            "initializer": initializer,
            "initargs": tuple(initargs) if initializer is not None else (),
            # Workers open the cache dir themselves only in shared mode;
            # protocol-mode workers go through the coordinator instead.
            "cache_dir": self.cache_dir if cache_mode == "shared" else None,
            "cache_mode": cache_mode,
        }
        self._assign(st)

        bind = self.bind or (
            "127.0.0.1"
            if all(spec.is_local for spec in self.specs)
            else "0.0.0.0"
        )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((bind, 0))
        listener.listen(128)
        # Closing a listening socket does not wake a thread already blocked
        # in accept() on Linux, so poll instead: the loop notices st.stop
        # (or the closed fd) within one timeout instead of stalling the
        # teardown join.
        listener.settimeout(0.1)
        port = listener.getsockname()[1]

        conns: list[socket.socket] = []
        handler_threads: list[threading.Thread] = []

        def _accept_loop() -> None:
            while True:
                try:
                    conn, _addr = listener.accept()
                except TimeoutError:
                    if st.stop:
                        return
                    continue
                except OSError:
                    return  # listener closed: run is over
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with st.lock:
                    conns.append(conn)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(st, conn),
                    daemon=True,
                )
                # Start before publishing: the teardown join snapshots this
                # list, and joining a not-yet-started thread raises.
                thread.start()
                handler_threads.append(thread)

        accept_thread = threading.Thread(target=_accept_loop, daemon=True)
        accept_thread.start()

        procs: list[subprocess.Popen] = []
        error: BaseException | None = None
        out: list[_t.Any] = [None] * len(items)
        try:
            if self.launch:
                procs = [self._launch(spec, port) for spec in self.specs]
            if self.on_listen is not None:
                self.on_listen(bind, port)
            deadline = time.monotonic() + self.connect_timeout
            completed = 0
            while completed < len(items):
                with st.lock:
                    if st.error is not None:
                        break
                try:
                    kind, pos, outcome = st.events.get(timeout=0.25)
                except _queue.Empty:
                    self._check_health(st, procs, deadline)
                    continue
                if kind == "result":
                    out[pos] = outcome
                    completed += 1
                    if on_complete is not None:
                        # Fired from the coordinator thread only, in true
                        # completion order — same contract as the pool
                        # backends' parent-side callbacks.
                        on_complete(pos, outcome)
                elif kind == "failed":
                    break
                # "tick" events just re-evaluate the loop conditions.
            with st.lock:
                error = st.error
                st.stop = True
        finally:
            with st.lock:
                st.stop = True
            try:
                listener.close()
            except OSError:
                pass
            # Let connected workers drain to their orderly ("done",) ...
            for thread in list(handler_threads):
                thread.join(timeout=5.0)
            # ... then drop anything still wedged and reap the agents.
            with st.lock:
                pending_conns = list(conns)
            for conn in pending_conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in procs:
                if proc.poll() is None:
                    try:
                        proc.terminate()
                    except OSError:
                        pass
            for proc in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            accept_thread.join(timeout=1.0)
            self._finish_stats(st, cache_mode)
        if error is not None:
            raise error
        return out

    def _finish_stats(self, st: _RunState, cache_mode: str | None) -> None:
        hosts: dict[str, dict[str, _t.Any]] = {}
        for label in sorted(st.hosts):
            h = st.hosts[label]
            hosts[label] = {
                "workers": h.ever_connected,
                "completed": h.completed,
                "steals": h.steals,
                "lost": h.lost,
                "wall_seconds": round(h.wall_seconds, 6),
                "cache_hits": h.cache_hits,
            }
        stats: dict[str, _t.Any] = {
            "hosts": hosts,
            "redispatched": st.redispatched,
            "cache_mode": cache_mode or "",
        }
        if cache_mode == "protocol":
            stats["protocol_cache"] = {
                "gets": st.cache_gets,
                "hits": st.cache_get_hits,
                "puts": st.cache_puts,
            }
        self._stats = stats
