"""Declarative scenario sweeps: matrix -> seeded scenarios -> one report.

The paper's evaluation fixes a handful of workload shapes; the ROADMAP's
north star is broad scenario coverage. This package turns "arrival process
x workload topology x SLO multiplier x tenant count x policy suite" into a
first-class object:

* :class:`ScenarioMatrix` — the declarative cartesian product, expanded
  into seeded, picklable :class:`Scenario` specs with per-scenario RNG
  streams derived from one master seed.
* :class:`SweepRunner` — executes the matrix through
  :meth:`repro.api.Session.compare`, serially or on a
  ``concurrent.futures`` process pool, with bit-identical results either
  way.
* :class:`SweepReport` — per-policy SLO attainment / cost / latency across
  every cell, renderable and exportable to CSV/JSON.

Quickstart::

    >>> from repro.scenarios import ScenarioMatrix, SweepRunner
    >>> from repro.traces.workload import ArrivalSpec
    >>> matrix = ScenarioMatrix(
    ...     workflows=("IA", "VA"),
    ...     arrivals=(ArrivalSpec("constant"), ArrivalSpec("poisson", 8.0)),
    ...     slo_scales=(1.0, 1.25),
    ...     n_requests=200,
    ... )
    >>> report = SweepRunner(max_workers=4).run(matrix)
    >>> print(report.render())
"""

from .matrix import (
    Scenario,
    ScenarioMatrix,
    parse_arrival,
    parse_cluster_config,
)
from .registry import SCENARIO_WORKFLOWS, register_workflow, scenario_workflow
from .report import ScenarioResult, SweepReport
from .runner import SweepRunner, run_scenario, scenario_requests

__all__ = [
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "SweepReport",
    "SweepRunner",
    "parse_arrival",
    "parse_cluster_config",
    "run_scenario",
    "scenario_requests",
    "register_workflow",
    "scenario_workflow",
    "SCENARIO_WORKFLOWS",
]
