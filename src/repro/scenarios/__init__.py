"""Declarative scenario sweeps: matrix -> seeded scenarios -> one report.

The paper's evaluation fixes a handful of workload shapes; the ROADMAP's
north star is broad scenario coverage. This package turns "arrival process
x workload topology x SLO multiplier x tenant count x policy suite" into a
first-class object:

* :class:`ScenarioMatrix` — the declarative cartesian product, expanded
  into seeded, picklable :class:`Scenario` specs with per-scenario RNG
  streams derived from one master seed.
* :class:`SweepRunner` — executes the matrix through
  :meth:`repro.api.Session.compare` on a pluggable
  :class:`ExecutionBackend` (``serial``, static ``pool``, the
  ``workstealing`` scheduler that dispatches expensive cells first, or
  the multi-host ``distributed`` fabric with cross-host stealing and
  cell-cache resume), with bit-identical results on every backend.
* :class:`CellCache` — content-addressed per-cell result persistence
  (plus disk layers behind the DP/hints memos) so repeated and
  overlapping sweeps skip already-computed cells.
* :class:`SweepReport` — per-policy SLO attainment / cost / latency across
  every cell, renderable and exportable to CSV/JSON.

Quickstart::

    >>> from repro.scenarios import ScenarioMatrix, SweepRunner
    >>> from repro.traces.workload import ArrivalSpec
    >>> matrix = ScenarioMatrix(
    ...     workflows=("IA", "VA"),
    ...     arrivals=(ArrivalSpec("constant"), ArrivalSpec("poisson", 8.0)),
    ...     slo_scales=(1.0, 1.25),
    ...     n_requests=200,
    ... )
    >>> report = SweepRunner(max_workers=4).run(matrix)
    >>> print(report.render())
"""

from .backends import (
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    WorkStealingBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .cache import CellCache, configure_persistent_caches, scenario_digest
from .costs import CellCostModel
from .distributed import DistributedBackend, HostSpec, parse_hosts
from .matrix import (
    Scenario,
    ScenarioMatrix,
    parse_arrival,
    parse_cluster_config,
    parse_fault,
    parse_fleet,
    storm_arrival,
)
from .registry import SCENARIO_WORKFLOWS, register_workflow, scenario_workflow
from .report import ScenarioResult, SweepReport
from .runner import SweepRunner, evaluate_cell, run_scenario, scenario_requests

__all__ = [
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "SweepReport",
    "SweepRunner",
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "WorkStealingBackend",
    "DistributedBackend",
    "HostSpec",
    "parse_hosts",
    "register_backend",
    "backend_names",
    "get_backend",
    "CellCache",
    "CellCostModel",
    "scenario_digest",
    "configure_persistent_caches",
    "parse_arrival",
    "parse_cluster_config",
    "parse_fault",
    "parse_fleet",
    "storm_arrival",
    "evaluate_cell",
    "run_scenario",
    "scenario_requests",
    "register_workflow",
    "scenario_workflow",
    "SCENARIO_WORKFLOWS",
]
