"""Content-addressed persistence for sweep artifacts.

Two layers live under one ``--cache-dir``:

* ``cells/`` — one JSON file per evaluated scenario cell, written by
  :class:`CellCache`. The key is a SHA-256 digest over the *canonical
  scenario spec* (every field that determines the result: workflow name +
  registration epoch, arrival shape, SLO scale, tenants, policies,
  request/sample counts, both derived seeds, baseline, pinned budget,
  executor and cluster knobs) plus the package version. The digest contains
  no timing and no host identity, so a repeated or overlapping sweep skips
  every already-computed cell and the replayed report stays byte-identical
  to a cold one.
* ``dp/`` and ``hints/`` — the persistent layers behind the synthesis
  memos (:mod:`repro.synthesis.dp`, :mod:`repro.synthesis.generator`),
  keyed by profile content digests. :func:`configure_persistent_caches`
  points both at the cache dir; it doubles as the process-pool worker
  initializer so every worker shares the tables instead of re-deriving
  them.

Invalidation is purely key-based: bumping ``repro.__version__``,
re-registering a workflow factory (epoch bump), or changing any scenario
field changes the digest and the stale entry is simply never read again.
Writes go through a temp file + :func:`os.replace` so concurrent workers
and interrupted sweeps never leave a torn entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import typing as _t

from ..persist import atomic_write_bytes
from .matrix import Scenario
from .registry import workflow_epoch
from .report import ScenarioResult

__all__ = [
    "CellCache",
    "CachedCell",
    "scenario_digest",
    "configure_persistent_caches",
    "snapshot_persistent_caches",
    "restore_persistent_caches",
    "synthesis_cache_stats",
]


def _package_version() -> str:
    # Lazy: repro/__init__ imports this package, so a module-level
    # ``from .. import __version__`` would hit the partially initialised
    # package during import.
    import repro

    return repro.__version__


def scenario_digest(scenario: Scenario) -> str:
    """SHA-256 over the canonical (timing-free) spec of one cell.

    Every input that can change the cell's :class:`ScenarioResult` is in
    the key; nothing else is. Two scenarios with equal digests produce
    byte-identical result JSON.

    Memoised per :class:`Scenario` instance (epoch- and version-guarded,
    so a workflow re-registration or version bump still invalidates):
    ``lookup`` + ``store`` hash each cell twice, and the distributed
    coordinator's skip-before-dispatch pass makes it a third time.
    Matrix expansion creates fresh instances per run, so the memo can
    never outlive the specs it describes — and it rides along when a
    cell is pickled to a worker, sparing the worker-side cache the
    re-hash too. Replay cells are deliberately never memoised: their
    digest folds in the trace file's *content*, so editing the trace
    must cold-start exactly those cells even on an already-hashed
    instance.
    """
    epoch = workflow_epoch(scenario.workflow)
    version = _package_version()
    replay = scenario.arrival.kind == "replay" and bool(scenario.arrival.trace)
    if not replay:
        memo = scenario.__dict__.get("_digest_memo")
        if memo is not None and memo[0] == epoch and memo[1] == version:
            return memo[2]
    arrival = dataclasses.asdict(scenario.arrival)
    if not arrival.get("phase"):
        # Same conditional-fold pattern as the blocks below: the phase
        # field arrived with the fleet subsystem, and popping the default
        # keeps every pre-existing cell's digest byte-identical.
        arrival.pop("phase", None)
    spec = {
        "schema": 1,
        "repro_version": version,
        "workflow": scenario.workflow,
        "workflow_epoch": epoch,
        "arrival": arrival,
        "slo_scale": scenario.slo_scale,
        "tenants": scenario.tenants,
        "policies": list(scenario.policies),
        "n_requests": scenario.n_requests,
        "samples": scenario.samples,
        "seed": scenario.seed,
        "profile_seed": scenario.profile_seed,
        "baseline": scenario.baseline,
        "budget_ms": (
            list(scenario.budget_ms) if scenario.budget_ms is not None else None
        ),
        "executor": scenario.executor,
        "cluster": (
            dataclasses.asdict(scenario.cluster)
            if scenario.cluster is not None
            else None
        ),
    }
    if scenario.streaming:
        # Folded in only when set so every pre-existing cell keeps its
        # digest (same pattern as trace_digest below).
        spec["streaming"] = True
    if scenario.faults is not None:
        # Same conditional-fold pattern: fault-free cells keep their cache
        # keys when a faults axis is added to a matrix, while any change
        # to a fault spec cold-starts exactly the faulted cells.
        spec["faults"] = dataclasses.asdict(scenario.faults)
    if scenario.fleet is not None:
        # Same conditional fold again: fleet-free cells keep their cache
        # keys when a fleets axis is added, while any change to a fleet
        # spec cold-starts exactly the fleet cells.
        spec["fleet"] = dataclasses.asdict(scenario.fleet)
    if scenario.arrival.kind == "replay" and scenario.arrival.trace:
        # Replay cells depend on the trace file's *content*, not its
        # path: editing the trace cold-starts exactly the cells that
        # replay it, while an untouched file stays a full cache hit even
        # if it was re-saved byte-identically elsewhere.
        from ..traces.trace_file import cached_trace

        spec["trace_digest"] = cached_trace(scenario.arrival.trace).digest()
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if not replay:
        # Scenario is frozen but not slotted, so the memo slips in past
        # the dataclass immutability without touching equality or the
        # pickled field payload semantics.
        object.__setattr__(scenario, "_digest_memo", (epoch, version, digest))
    return digest


@dataclasses.dataclass(frozen=True)
class CachedCell:
    """A cache hit: the stored result, or ``None`` for a cached dead cell.

    The wrapper distinguishes "cached as skipped" (``result is None``)
    from "not cached" (:meth:`CellCache.lookup` returns ``None``).
    """

    result: ScenarioResult | None


class CellCache:
    """Per-cell :class:`ScenarioResult` store under ``<root>/cells/``.

    Dead cells (no buildable policy) are cached too, so a warm re-run of a
    matrix with skipped cells still performs zero evaluations. Corrupt or
    unreadable entries count as misses and are overwritten on store.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, "cells", f"{digest}.json")

    def lookup(self, scenario: Scenario) -> CachedCell | None:
        """The stored outcome for ``scenario``, or ``None`` on a miss."""
        path = self._path(scenario_digest(scenario))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            payload = doc["result"]
            cell = CachedCell(
                result=None if payload is None else ScenarioResult(**payload)
            )
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return cell

    def store(
        self, scenario: Scenario, result: ScenarioResult | None
    ) -> None:
        """Persist one evaluated cell (or its dead-cell marker)."""
        doc = {
            "schema": 1,
            "scenario_id": scenario.scenario_id,
            "result": None if result is None else dataclasses.asdict(result),
        }
        # Insertion order preserved deliberately (no sort_keys): the
        # result's per-policy table order is evaluation order, and a warm
        # replay must reproduce the cold run's CSV/render verbatim, not
        # just its (key-sorted) JSON.
        atomic_write_bytes(
            self._path(scenario_digest(scenario)),
            json.dumps(doc).encode("utf-8"),
        )

    def stats(self) -> dict[str, int]:
        """Lookup counters since construction."""
        return {"hits": self.hits, "misses": self.misses}


def configure_persistent_caches(cache_dir: str | None) -> None:
    """Point the DP/hints memos at disk layers under ``cache_dir``.

    ``None`` detaches both (memory-only, the default). Top-level and
    argument-picklable on purpose: the sweep backends pass it as the
    process-pool worker ``initializer`` so every worker shares the solved
    tables through the filesystem.
    """
    from ..synthesis.dag import set_dag_hints_cache_dir
    from ..synthesis.dp import set_dp_cache_dir
    from ..synthesis.generator import set_hints_cache_dir

    if cache_dir is None:
        set_dp_cache_dir(None)
        set_hints_cache_dir(None)
        set_dag_hints_cache_dir(None)
    else:
        root = os.fspath(cache_dir)
        set_dp_cache_dir(os.path.join(root, "dp"))
        set_hints_cache_dir(os.path.join(root, "hints"))
        set_dag_hints_cache_dir(os.path.join(root, "dag-hints"))


def snapshot_persistent_caches() -> tuple[str | None, str | None, str | None]:
    """Current (dp, hints, dag-hints) disk-layer dirs, for
    :func:`restore_persistent_caches`."""
    from ..synthesis.dag import dag_hints_cache_dir
    from ..synthesis.dp import dp_cache_dir
    from ..synthesis.generator import hints_cache_dir

    return (dp_cache_dir(), hints_cache_dir(), dag_hints_cache_dir())


def restore_persistent_caches(
    snapshot: tuple[str | None, str | None, str | None]
) -> None:
    """Re-attach the disk layers captured by :func:`snapshot_persistent_caches`.

    The sweep runner brackets its runs with snapshot/restore so pointing a
    sweep at a ``cache_dir`` never clobbers a configuration the caller
    installed directly through ``set_dp_cache_dir``/``set_hints_cache_dir``/
    ``set_dag_hints_cache_dir``.
    """
    from ..synthesis.dag import set_dag_hints_cache_dir
    from ..synthesis.dp import set_dp_cache_dir
    from ..synthesis.generator import set_hints_cache_dir

    dp_dir, hints_dir, dag_hints_dir = snapshot
    set_dp_cache_dir(dp_dir)
    set_hints_cache_dir(hints_dir)
    set_dag_hints_cache_dir(dag_hints_dir)


def synthesis_cache_stats() -> dict[str, dict[str, int]]:
    """Current process's DP/hints memo counters (see the synthesis modules)."""
    from ..synthesis.dag import dag_hints_cache_stats
    from ..synthesis.dp import dp_cache_stats
    from ..synthesis.generator import hints_cache_stats

    return {
        "dp": dp_cache_stats(),
        "hints": hints_cache_stats(),
        "dag_hints": dag_hints_cache_stats(),
    }


def add_stats(
    totals: dict[str, dict[str, int]], delta: _t.Mapping[str, _t.Mapping[str, int]]
) -> None:
    """Accumulate one cell's counter delta into running totals, in place."""
    for section, counters in delta.items():
        bucket = totals.setdefault(section, {})
        for name, value in counters.items():
            bucket[name] = bucket.get(name, 0) + int(value)
