"""Pluggable sweep execution backends: how cells get scheduled, not what
they compute.

A backend receives the expanded cells and a picklable per-cell function
and returns one outcome per cell **in submission order**, whatever order
the hardware finished them in — which is why every backend produces a
bit-identical :class:`~repro.scenarios.report.SweepReport`. Three ship
built in:

* ``serial`` — in-process loop; the reference for determinism tests.
* ``pool`` — the classic static fan-out over a
  ``concurrent.futures.ProcessPoolExecutor`` via ``map`` (cells dispatched
  in expansion order).
* ``workstealing`` — per-cell ``submit`` + ``as_completed``. Cells are
  dispatched in descending :meth:`~repro.scenarios.matrix.Scenario.
  cost_estimate` order so the expensive ones start first and cheap ones
  pack around them — on heterogeneous matrices (mixed tenant counts,
  analytic + DES-cluster cells) this removes the "big cell lands last"
  straggler that a static map suffers.

New backends register by name::

    @register_backend("my-sched")
    class MyBackend:
        ...

and become constructible through :func:`get_backend` / the
``SweepRunner(backend=...)`` seam and ``janus-repro sweep --backend``.
"""

from __future__ import annotations

import concurrent.futures
import typing as _t

from ..errors import ExperimentError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .matrix import Scenario

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "WorkStealingBackend",
    "register_backend",
    "backend_names",
    "get_backend",
    "resolve_backend",
]

#: Called in the *parent* process as each cell completes:
#: ``(position in the submitted sequence, outcome)``.
CompletionCallback = _t.Callable[[int, _t.Any], None]

#: Worker-process initializer (e.g. attaching persistent synthesis caches).
Initializer = _t.Callable[..., None]


class ExecutionBackend(_t.Protocol):
    """What the sweep runner needs from a scheduler."""

    #: Registry name, echoed into :class:`SweepReport.backend`.
    name: str

    def workers_for(self, n_tasks: int) -> int:
        """Worker processes a run over ``n_tasks`` cells would use."""
        ...

    def run(
        self,
        scenarios: _t.Sequence["Scenario"],
        fn: _t.Callable[["Scenario"], _t.Any],
        on_complete: CompletionCallback | None = None,
        initializer: Initializer | None = None,
        initargs: tuple = (),
    ) -> list[_t.Any]:
        """``[fn(s) for s in scenarios]``, scheduled the backend's way.

        Results come back in ``scenarios`` order regardless of completion
        order; ``fn`` must be a picklable top-level callable for
        process-pool backends. ``initializer``/``initargs`` run once per
        worker process (and once in-process for the serial backend).
        """
        ...


_BACKENDS: dict[str, _t.Callable[..., ExecutionBackend]] = {}


def register_backend(
    name: str,
) -> _t.Callable[[_t.Callable[..., ExecutionBackend]], _t.Callable[..., ExecutionBackend]]:
    """Class decorator registering an execution backend under ``name``."""

    def _register(factory: _t.Callable[..., ExecutionBackend]):
        _BACKENDS[name] = factory
        return factory

    return _register


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_backend(name: str, **kwargs: _t.Any) -> ExecutionBackend:
    """Construct the backend registered under ``name``.

    Construction options (``max_workers``, ``mp_context``) are filtered
    to what the factory's signature accepts, so a registered backend
    with a plain ``__init__`` — a custom scheduler that manages its own
    workers, say — resolves without having to declare knobs it ignores.
    """
    import inspect

    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown sweep backend {name!r}; known: {backend_names()}"
        )
    params = inspect.signature(factory).parameters
    if not any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        kwargs = {k: v for k, v in kwargs.items() if k in params}
    return factory(**kwargs)


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    max_workers: int = 1,
    mp_context: _t.Any = None,
    **options: _t.Any,
) -> ExecutionBackend:
    """Turn the ``SweepRunner(backend=...)`` argument into an instance.

    ``None`` keeps the historical behaviour: serial when ``max_workers``
    <= 1, the static pool otherwise. A string resolves through the
    registry; an instance passes through unchanged (its own worker
    settings win). Extra ``options`` (e.g. the runner's calibrated
    ``cost_model``) reach the factory subject to :func:`get_backend`'s
    signature filtering, so backends that don't take them ignore them.
    """
    if backend is None:
        backend = "serial" if max_workers <= 1 else "pool"
    if isinstance(backend, str):
        return get_backend(
            backend, max_workers=max_workers, mp_context=mp_context,
            **options,
        )
    return backend


@register_backend("serial")
class SerialBackend:
    """In-process, submission-order evaluation (the determinism reference)."""

    name = "serial"

    def __init__(self, max_workers: int = 1, mp_context: _t.Any = None) -> None:
        # Accepted for registry uniformity; a serial run is one process.
        del max_workers, mp_context

    def workers_for(self, n_tasks: int) -> int:
        return 1

    def run(
        self,
        scenarios: _t.Sequence["Scenario"],
        fn: _t.Callable[["Scenario"], _t.Any],
        on_complete: CompletionCallback | None = None,
        initializer: Initializer | None = None,
        initargs: tuple = (),
    ) -> list[_t.Any]:
        if initializer is not None:
            initializer(*initargs)
        out: list[_t.Any] = []
        for pos, scenario in enumerate(scenarios):
            outcome = fn(scenario)
            out.append(outcome)
            if on_complete is not None:
                on_complete(pos, outcome)
        return out


class _PoolBackendBase:
    """Shared process-pool plumbing for the fan-out backends."""

    def __init__(
        self, max_workers: int | None = None, mp_context: _t.Any = None
    ) -> None:
        import os

        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self.mp_context = mp_context

    def workers_for(self, n_tasks: int) -> int:
        return max(1, min(self.max_workers, n_tasks))

    def _pool(
        self, n_tasks: int, initializer: Initializer | None, initargs: tuple
    ) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers_for(n_tasks),
            mp_context=self.mp_context,
            initializer=initializer,
            initargs=initargs if initializer is not None else (),
        )


@register_backend("pool")
class PoolBackend(_PoolBackendBase):
    """Static ``pool.map`` fan-out in expansion order (the classic path)."""

    name = "pool"

    def run(
        self,
        scenarios: _t.Sequence["Scenario"],
        fn: _t.Callable[["Scenario"], _t.Any],
        on_complete: CompletionCallback | None = None,
        initializer: Initializer | None = None,
        initargs: tuple = (),
    ) -> list[_t.Any]:
        if not scenarios:
            return []
        with self._pool(len(scenarios), initializer, initargs) as pool:
            out: list[_t.Any] = []
            # map yields in submission order, so completion callbacks are
            # head-of-line ordered — cell k is reported only after 0..k-1.
            for pos, outcome in enumerate(pool.map(fn, scenarios)):
                out.append(outcome)
                if on_complete is not None:
                    on_complete(pos, outcome)
        return out


@register_backend("workstealing")
class WorkStealingBackend(_PoolBackendBase):
    """Per-cell submission, most expensive first, reassembled in order.

    ``submit``/``as_completed`` keeps every worker busy until the queue is
    drained; dispatching in descending cost-estimate order (ties broken by
    expansion position, so dispatch is deterministic) ensures the
    long-pole cells cannot end up straggling behind a drained queue.
    Completion callbacks fire in true completion order.

    ``cost_model`` optionally replaces the static
    :meth:`~repro.scenarios.matrix.Scenario.cost_estimate` heuristic with
    calibrated per-family wall-time history
    (:class:`~repro.scenarios.costs.CellCostModel`, attached by the sweep
    runner when a cache dir is configured). Either way the model only
    *orders* dispatch; results are always reassembled in submission
    order, so calibration can never change them.
    """

    name = "workstealing"

    def __init__(
        self,
        max_workers: int | None = None,
        mp_context: _t.Any = None,
        cost_model: _t.Any = None,
    ) -> None:
        super().__init__(max_workers=max_workers, mp_context=mp_context)
        self.cost_model = cost_model

    def _costs(self, scenarios: _t.Sequence["Scenario"]) -> list[float]:
        if self.cost_model is not None:
            try:
                return list(self.cost_model.estimate_all(scenarios))
            except Exception:
                pass  # calibration is advisory; fall back to the heuristic
        return [s.cost_estimate() for s in scenarios]

    def run(
        self,
        scenarios: _t.Sequence["Scenario"],
        fn: _t.Callable[["Scenario"], _t.Any],
        on_complete: CompletionCallback | None = None,
        initializer: Initializer | None = None,
        initargs: tuple = (),
    ) -> list[_t.Any]:
        if not scenarios:
            return []
        costs = self._costs(scenarios)
        order = sorted(
            range(len(scenarios)),
            key=lambda pos: (-costs[pos], pos),
        )
        out: list[_t.Any] = [None] * len(scenarios)
        with self._pool(len(scenarios), initializer, initargs) as pool:
            futures = {
                pool.submit(fn, scenarios[pos]): pos for pos in order
            }
            for future in concurrent.futures.as_completed(futures):
                pos = futures[future]
                try:
                    outcome = future.result()
                except BaseException:
                    # Fail fast: cancel everything not yet started before
                    # the pool __exit__ blocks waiting on it — one bad
                    # cell must not keep the rest of the queue evaluating
                    # (already-running cells still finish; a process pool
                    # cannot preempt them).
                    for pending_future in futures:
                        pending_future.cancel()
                    raise
                out[pos] = outcome
                if on_complete is not None:
                    on_complete(pos, outcome)
        return out
