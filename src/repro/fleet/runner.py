"""Serve one fleet scenario cell: per-region streams, routed, merged.

The evaluation shape mirrors the single-region path
(:func:`repro.scenarios.runner.run_scenario`) with one extra layer:

1. Every region generates its own request stream. Region 0 draws from
   the *exact* seed path of the cell's single-region sibling
   (``child_seed(seed, "tenant", t)`` — common random numbers: adding a
   fleet axis replays the sibling's workload at home). Regions ``r >= 1``
   draw fresh streams from ``child_seed(seed, "region", name, "tenant",
   t)`` with the arrival curve phase-shifted by ``2*pi*r/R`` — each
   region peaks at its own local busy hour.
2. The merged arrival-ordered stream is routed **once**, policy-
   independently, by the fleet's :class:`~repro.fleet.routing
   .RoutingPolicy` under the deterministic occupancy proxy; a
   ``region-failover`` fault compiles to a dark window that drains its
   region's traffic to the survivors.
3. Each sizing policy serves every region's assigned sub-stream on the
   cell's executor; remote-served requests pay the topology's RTT as a
   shift of their stage timeline. The per-region results merge back into
   one :class:`~repro.runtime.results.RunResult` per policy, so the
   comparison table and its normalisation are computed exactly as in the
   single-region path.

Everything here is a pure function of the scenario spec, so fleet cells
inherit the sweep determinism contract: bit-identical across execution
backends, byte-identical on a warm cache replay.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from ..cluster.faults import compile_region_failover
from ..errors import ExperimentError
from ..rng import child_seed
from ..runtime.driver import compare
from ..runtime.results import RunResult
from ..workflow.request import RequestOutcome, WorkflowRequest
from .routing import RoutingPlan, route_requests
from .topology import FleetConfig

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.session import Session
    from ..policies.base import SizingPolicy
    from ..scenarios.matrix import Scenario
    from ..scenarios.report import ScenarioResult
    from ..workflow.catalog import Workflow

__all__ = ["run_fleet_scenario", "fleet_requests", "region_arrival"]

#: Aggregated platform extras that are per-request rates/means — combined
#: across regions as a served-request-weighted mean. Everything else is a
#: count and sums. ``hit_rate`` is cumulative on the policy object, so the
#: last region's reading already covers the whole cell (see below).
_RATE_PREFIXES = ("mean_",)
_RATE_KEYS = frozenset({"straggler_exposure"})


def _is_rate_like(key: str) -> bool:
    return (
        key.endswith("_rate")
        or key.startswith(_RATE_PREFIXES)
        or key in _RATE_KEYS
    )


def region_arrival(arrival, region_index: int, n_regions: int):
    """The arrival spec region ``region_index`` of ``n_regions`` draws from.

    Curves with a phase (diurnal swings and the storms stacked on them)
    shift by the region's slice of the period — each region peaks at its
    own local busy hour; phase-free kinds (poisson, constant, burst,
    azure, replay) differ only through their seeds. Region 0 keeps the
    spec untouched. Shared by the batch cell evaluator and the serving
    loop's fleet source.
    """
    if region_index == 0 or arrival.kind not in ("diurnal", "storm"):
        return arrival
    offset = 2.0 * math.pi * region_index / n_regions
    return dataclasses.replace(arrival, phase=arrival.phase + offset)


def _region_arrival(scenario: "Scenario", region_index: int):
    return region_arrival(
        scenario.effective_arrival(),
        region_index,
        len(scenario.fleet.regions),
    )


def fleet_requests(
    workflow: "Workflow", scenario: "Scenario", slo_ms: float
) -> tuple[list[WorkflowRequest], list[int]]:
    """The fleet cell's merged stream and each request's home region.

    Returns the globally renumbered arrival-ordered requests plus a
    parallel list of home-region indices. Region 0's stream is
    byte-identical to the single-region sibling's
    (:func:`~repro.scenarios.runner.scenario_requests`).
    """
    from ..scenarios.runner import merge_tenant_streams, scenario_requests
    from ..traces.workload import WorkloadConfig, generate_requests

    fleet = scenario.fleet
    per_region: list[list[WorkflowRequest]] = []
    for r, name in enumerate(fleet.regions):
        if r == 0:
            per_region.append(scenario_requests(workflow, scenario, slo_ms))
            continue
        streams = [
            generate_requests(
                workflow,
                WorkloadConfig(
                    n_requests=scenario.n_requests,
                    arrival=_region_arrival(scenario, r),
                    slo_ms=slo_ms,
                ),
                seed=child_seed(
                    scenario.seed, "region", name, "tenant", str(tenant)
                ),
            )
            for tenant in range(scenario.tenants)
        ]
        per_region.append(
            streams[0] if scenario.tenants == 1
            else merge_tenant_streams(streams)
        )
    # Same total-order merge key shape as merge_tenant_streams, one level
    # up: deterministic even when regions share timestamps.
    tagged = [
        (req.arrival_ms, region, req.request_id, req)
        for region, stream in enumerate(per_region)
        for req in stream
    ]
    tagged.sort(key=lambda item: item[:3])
    requests = [
        dataclasses.replace(req, request_id=i)
        for i, (_, _, _, req) in enumerate(tagged)
    ]
    homes = [region for _, region, _, _ in tagged]
    return requests, homes


def _shift_stages(outcome: RequestOutcome, rtt_ms: float) -> RequestOutcome:
    """A remote-served outcome pays the cross-region hop: every stage of
    its timeline shifts by the RTT, so end-to-end latency grows by exactly
    the link penalty while per-stage durations (and allocations) stay
    untouched."""
    if rtt_ms == 0.0:
        return outcome
    return dataclasses.replace(
        outcome,
        stages=[
            dataclasses.replace(
                stage,
                start_ms=stage.start_ms + rtt_ms,
                end_ms=stage.end_ms + rtt_ms,
            )
            for stage in outcome.stages
        ],
    )


def _merge_region_extras(
    per_region: list[tuple[int, dict[str, _t.Any]]],
) -> dict[str, float]:
    """Combine per-region platform extras into cell-level values.

    Rates and means weight by the region's served-request count; counters
    sum. ``hit_rate`` is read off the (shared) policy object after each
    region run, so the last reading already aggregates the whole cell.
    """
    keys: dict[str, None] = {}
    for _, extras in per_region:
        for key in extras:
            keys.setdefault(key)
    merged: dict[str, float] = {}
    for key in keys:
        readings = [
            (n, float(extras[key]))
            for n, extras in per_region
            if key in extras
        ]
        if key == "hit_rate":
            merged[key] = readings[-1][1]
        elif _is_rate_like(key):
            total = sum(n for n, _ in readings)
            merged[key] = (
                sum(n * v for n, v in readings) / total if total else 0.0
            )
        else:
            merged[key] = sum(v for _, v in readings)
    return merged


def run_fleet_scenario(
    session: "Session",
    scenario: "Scenario",
    slo_ms: float,
    suite: _t.Mapping[str, "SizingPolicy"],
) -> "ScenarioResult":
    """Evaluate one fleet cell end to end (see the module docstring)."""
    from ..scenarios.report import CARRIED_EXTRAS, ScenarioResult

    fleet: FleetConfig = scenario.fleet
    n_regions = len(fleet.regions)
    requests, homes = fleet_requests(session.workflow, scenario, slo_ms)
    total = len(requests)
    arrivals = [req.arrival_ms for req in requests]

    outage = None
    if (
        scenario.faults is not None
        and scenario.faults.kind == "region-failover"
    ):
        # The outage horizon is the *shortest* region's traffic span, so
        # the dark window overlaps live traffic no matter which region the
        # fault seed picks (phase-offset regions finish their fixed-count
        # streams at very different times). The seed derivation mirrors
        # the cluster-side fault kinds, so the request streams stay
        # fault-independent (common random numbers).
        last_per_region = [0.0] * n_regions
        for t_ms, home in zip(arrivals, homes):
            if t_ms > last_per_region[home]:
                last_per_region[home] = t_ms
        horizon_ms = max(min(last_per_region), 1.0)
        outage = compile_region_failover(
            scenario.faults,
            child_seed(scenario.seed, "faults", scenario.faults.label),
            n_regions,
            horizon_ms,
        )

    plan: RoutingPlan = route_requests(
        fleet, homes, arrivals, hold_ms=slo_ms, outage=outage
    )
    by_region: list[list[int]] = [[] for _ in range(n_regions)]
    for i, region in enumerate(plan.assigned):
        by_region[region].append(i)

    backend = session.executor(scenario.executor)
    results: dict[str, RunResult] = {}
    region_violations: dict[str, list[int]] = {}
    region_extras: dict[str, list[tuple[int, dict[str, _t.Any]]]] = {}
    for name, policy in suite.items():
        merged: list[RequestOutcome | None] = [None] * total
        collected: list[tuple[int, dict[str, _t.Any]]] = []
        violations = [0] * n_regions
        for region, indices in enumerate(by_region):
            if not indices:
                continue
            # Each region serves its assigned sub-stream under locally
            # contiguous ids (executors may index arrays by request id);
            # outcomes map back to global ids on merge.
            sub = [
                dataclasses.replace(requests[i], request_id=j)
                for j, i in enumerate(indices)
            ]
            result = backend.run(policy, sub)
            collected.append((len(indices), dict(result.extras)))
            for j, i in enumerate(indices):
                outcome = _shift_stages(
                    result.outcomes[j], plan.rtt_ms[i]
                )
                outcome = dataclasses.replace(outcome, request_id=i)
                merged[i] = outcome
                if not outcome.slo_met:
                    violations[region] += 1
        if any(o is None for o in merged):  # pragma: no cover - invariant
            raise ExperimentError(
                f"fleet cell {scenario.scenario_id}: routing lost requests"
            )
        results[name] = RunResult(policy_name=name, outcomes=merged)
        region_violations[name] = violations
        region_extras[name] = collected

    baseline = scenario.baseline
    if baseline is None:
        baseline = "Optimal" if "Optimal" in results else next(iter(results))
    table = compare(results, baseline=baseline)

    extras: dict[str, dict[str, float]] = {}
    for name in results:
        merged_extras = _merge_region_extras(region_extras[name])
        vals = {
            key: float(merged_extras[key])
            for key in CARRIED_EXTRAS
            if key in merged_extras
        }
        vals["fleet_spillovers"] = float(plan.spillovers)
        vals["fleet_failovers"] = float(plan.failovers)
        vals["fleet_remote_fraction"] = (
            sum(1 for i, h in enumerate(homes) if plan.assigned[i] != h)
            / total
        )
        vals["fleet_rtt_penalty_ms"] = sum(plan.rtt_ms) / total
        # Per-region accounting keys carry the region name; they live in
        # the JSON extras only (the CSV promotes the fixed fleet columns
        # above, like every other extra).
        for region, region_name in enumerate(fleet.regions):
            served = plan.region_counts[region]
            vals[f"fleet_share_{region_name}"] = served / total
            vals[f"fleet_slo_{region_name}"] = (
                1.0 - region_violations[name][region] / served
                if served
                else 1.0
            )
        # Per-region cold starts where the platform reports them: the
        # collected list is ordered by region index over served regions.
        served_regions = [
            r for r in range(n_regions) if by_region[r]
        ]
        for (served, raw), region in zip(
            region_extras[name], served_regions
        ):
            if "cold_start_rate" in raw:
                vals[
                    f"fleet_cold_start_rate_{fleet.regions[region]}"
                ] = float(raw["cold_start_rate"])
        extras[name] = vals

    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        workflow=scenario.workflow,
        arrival=scenario.arrival.label,
        slo_scale=scenario.slo_scale,
        tenants=scenario.tenants,
        slo_ms=slo_ms,
        seed=scenario.seed,
        baseline=baseline,
        executor=f"Fleet[{n_regions}x{type(backend).__name__}]",
        table=table,
        extras=extras,
    )
