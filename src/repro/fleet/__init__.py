"""Multi-region fleets: phase-offset regions joined by pluggable routing.

Public surface of the fleet subsystem — the declarative
:class:`FleetConfig` spec scenario cells carry, the
:class:`RegionTopology` RTT table, the :class:`RoutingPolicy` protocol
with its registry, and the cell evaluator the sweep runner dispatches to.
"""

from .routing import (
    ROUTING_POLICIES,
    RoutingContext,
    RoutingPlan,
    RoutingPolicy,
    StreamRouter,
    register_routing,
    route_requests,
)
from .runner import fleet_requests, region_arrival, run_fleet_scenario
from .topology import FleetConfig, RegionTopology, parse_fleet

__all__ = [
    "FleetConfig",
    "RegionTopology",
    "parse_fleet",
    "RoutingContext",
    "RoutingPlan",
    "RoutingPolicy",
    "ROUTING_POLICIES",
    "StreamRouter",
    "register_routing",
    "route_requests",
    "fleet_requests",
    "region_arrival",
    "run_fleet_scenario",
]
