"""Fleet shape: named regions, their RTT table, and the CLI grammar.

A fleet is a set of named regions, each running its own copy of the
serving stack against a phase-offset arrival curve (region ``r`` of ``R``
sees the shared diurnal swing shifted by ``2*pi*r/R`` — its own local
busy hour). :class:`FleetConfig` is the declarative spec a scenario cell
carries; like :class:`~repro.cluster.faults.FaultSpec` it is frozen,
seed-free and picklable, so the digest/caching machinery folds it in with
``dataclasses.asdict``. :class:`RegionTopology` holds the symmetric
cross-region RTT table the latency-aware router and the remote-serving
penalty read from; the default is a ring (RTT grows with hop distance),
the shape of real multi-region deployments without per-pair
configuration.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..errors import ExperimentError

__all__ = ["FleetConfig", "RegionTopology", "parse_fleet"]

#: Region names used when a spec gives only a count.
_DEFAULT_REGION_NAMES = ("us-east", "eu-west", "ap-south", "us-west",
                         "eu-north", "ap-east", "sa-east", "af-south")


@dataclass(frozen=True)
class RegionTopology:
    """Symmetric cross-region RTT table in milliseconds.

    ``rtt[a][b]`` is the one-way penalty a request pays when its home
    region ``a`` hands it to region ``b``; the diagonal is zero. Built
    from a fleet via :meth:`ring` — hop distance on the region ring times
    a per-hop RTT — or directly from an explicit table.
    """

    rtt: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.rtt)
        for a, row in enumerate(self.rtt):
            if len(row) != n:
                raise ExperimentError(
                    f"RTT table must be square, row {a} has {len(row)} "
                    f"entries for {n} regions"
                )
            if row[a] != 0.0:
                raise ExperimentError(
                    f"RTT table diagonal must be zero, got {row[a]} at {a}"
                )
            for b, value in enumerate(row):
                if value < 0:
                    raise ExperimentError(
                        f"RTT must be >= 0, got {value} for {a}->{b}"
                    )
                if self.rtt[b][a] != value:
                    raise ExperimentError(
                        f"RTT table must be symmetric, "
                        f"{a}->{b} is {value} but {b}->{a} is {self.rtt[b][a]}"
                    )

    @classmethod
    def ring(cls, n_regions: int, hop_rtt_ms: float) -> "RegionTopology":
        """Ring topology: RTT is hop distance times ``hop_rtt_ms``."""
        rows = []
        for a in range(n_regions):
            row = []
            for b in range(n_regions):
                hops = abs(a - b)
                row.append(min(hops, n_regions - hops) * float(hop_rtt_ms))
            rows.append(tuple(row))
        return cls(rtt=tuple(rows))

    def rtt_ms(self, a: int, b: int) -> float:
        """One-way RTT penalty from region ``a`` to region ``b``."""
        return self.rtt[a][b]


@dataclass(frozen=True)
class FleetConfig:
    """Declarative spec of one multi-region fleet — picklable, seed-free.

    ``capacity`` is the per-region in-flight ceiling the spillover router
    and the latency-aware queue penalty read (a request occupies its
    region from arrival until its SLO deadline — a deterministic load
    proxy that needs no feedback from the executor). ``rtt_ms`` is the
    per-hop RTT of the default ring topology. ``weights`` biases the
    weighted router (empty = uniform).
    """

    regions: tuple[str, ...] = _DEFAULT_REGION_NAMES[:3]
    routing: str = "home-region"
    capacity: int = 8
    rtt_ms: float = 60.0
    weights: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.regions:
            raise ExperimentError("fleet requires at least one region")
        if len(set(self.regions)) != len(self.regions):
            raise ExperimentError(
                f"region names must be unique, got {list(self.regions)}"
            )
        for name in self.regions:
            if not name or any(c in name for c in ",=|/"):
                raise ExperimentError(f"invalid region name {name!r}")
        # Lazy: routing.py imports this module for its context types.
        from .routing import ROUTING_POLICIES

        if self.routing not in ROUTING_POLICIES:
            raise ExperimentError(
                f"unknown routing policy {self.routing!r}; "
                f"known: {sorted(ROUTING_POLICIES)}"
            )
        if self.capacity < 1:
            raise ExperimentError(
                f"region capacity must be >= 1, got {self.capacity}"
            )
        if self.rtt_ms < 0:
            raise ExperimentError(f"rtt must be >= 0 ms, got {self.rtt_ms}")
        if self.weights:
            if len(self.weights) != len(self.regions):
                raise ExperimentError(
                    f"{len(self.weights)} weights for "
                    f"{len(self.regions)} regions"
                )
            if any(w <= 0 for w in self.weights):
                raise ExperimentError(
                    f"weights must be > 0, got {list(self.weights)}"
                )

    @property
    def label(self) -> str:
        """Stable identifier for scenario ids and reports."""
        return f"{len(self.regions)}r:{self.routing}"

    def topology(self) -> RegionTopology:
        """The fleet's RTT table (ring with ``rtt_ms`` per hop)."""
        return RegionTopology.ring(len(self.regions), self.rtt_ms)

    def effective_weights(self) -> tuple[float, ...]:
        """Routing weights, defaulting to uniform."""
        return self.weights if self.weights else (1.0,) * len(self.regions)


def parse_fleet(text: str) -> FleetConfig:
    """Parse a CLI fleet token into a :class:`FleetConfig`.

    Grammar: comma-separated ``key=value`` pairs —
    ``regions=3`` (well-known names) or ``regions=eu:us:ap`` (explicit),
    ``routing=spillover`` (any registered policy), ``capacity=8``
    (per-region in-flight ceiling), ``rtt=60`` (ring per-hop RTT, ms),
    ``weights=1:2:1`` (weighted-router bias). Example::

        --fleet regions=3,routing=spillover,rtt=40
    """
    overrides: dict[str, _t.Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key, raw = key.strip().lower(), raw.strip()
        if not sep or not key or not raw:
            raise ExperimentError(
                f"invalid fleet knob {part!r}; expected key=value"
            )
        if key == "regions":
            if ":" in raw:
                overrides["regions"] = tuple(
                    name.strip() for name in raw.split(":")
                )
            else:
                try:
                    count = int(raw)
                except ValueError:
                    raise ExperimentError(
                        f"regions must be a count or name:name:..., got {raw!r}"
                    )
                if not 1 <= count <= len(_DEFAULT_REGION_NAMES):
                    raise ExperimentError(
                        f"region count must be in "
                        f"[1, {len(_DEFAULT_REGION_NAMES)}], got {count} "
                        f"(name regions explicitly for larger fleets)"
                    )
                overrides["regions"] = _DEFAULT_REGION_NAMES[:count]
        elif key == "routing":
            overrides["routing"] = raw.lower()
        elif key == "capacity":
            try:
                overrides["capacity"] = int(raw)
            except ValueError:
                raise ExperimentError(f"invalid capacity {raw!r}")
        elif key == "rtt":
            try:
                overrides["rtt_ms"] = float(raw)
            except ValueError:
                raise ExperimentError(f"invalid rtt {raw!r}")
        elif key == "weights":
            try:
                overrides["weights"] = tuple(
                    float(w) for w in raw.split(":")
                )
            except ValueError:
                raise ExperimentError(f"invalid weights {raw!r}")
        else:
            raise ExperimentError(
                f"unknown fleet knob {key!r}; "
                f"known: regions, routing, capacity, rtt, weights"
            )
    return FleetConfig(**overrides)
