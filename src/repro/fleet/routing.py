"""Pluggable cross-region routing: the policy protocol and its registry.

Routing runs once per fleet cell, *before* any executor serves anything,
over the merged arrival-ordered request stream. Load is a deterministic
proxy — an assigned request occupies its region from arrival until its
SLO deadline — so the pass needs no feedback from the executors and every
backend (serial, pool, work-stealing, distributed) routes identically,
which is what keeps fleet sweeps bit-identical across backends.

Policies register by name through :func:`register_routing`; a
:class:`FleetConfig` names one and :func:`route_requests` resolves it.
Every policy must serve each request exactly once: it picks one region
from the ``up`` list (never empty — an outage with no survivor is
rejected upstream), and the router counts a *failover* when the home
region is dark and a *spillover* when the home region is up but the
policy sent the request elsewhere anyway.
"""

from __future__ import annotations

import heapq
import typing as _t
from dataclasses import dataclass

from ..errors import ExperimentError
from .topology import FleetConfig, RegionTopology

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.faults import RegionOutage

__all__ = [
    "RoutingContext",
    "RoutingPolicy",
    "RoutingPlan",
    "ROUTING_POLICIES",
    "StreamRouter",
    "register_routing",
    "route_requests",
]


@dataclass(frozen=True)
class RoutingContext:
    """Everything a routing decision may read besides instantaneous load."""

    fleet: FleetConfig
    topology: RegionTopology
    weights: tuple[float, ...]
    #: Queueing penalty (ms) one in-flight request adds to a region's
    #: latency score — the SLO budget spread over the region's capacity.
    queue_penalty_ms: float


@_t.runtime_checkable
class RoutingPolicy(_t.Protocol):
    """One cross-region placement decision.

    ``choose`` picks the serving region for a single request: ``home`` is
    the region whose arrival curve produced it, ``up`` the currently
    reachable regions in ascending index order (never empty), ``load``
    the per-region in-flight counts under the deterministic occupancy
    proxy. Implementations must be pure functions of their arguments —
    no RNG, no wall clock — so routing replays bit-identically.
    """

    def choose(
        self,
        home: int,
        up: _t.Sequence[int],
        load: _t.Sequence[int],
        ctx: RoutingContext,
    ) -> int: ...


#: Registered routing policies by CLI name.
ROUTING_POLICIES: dict[str, RoutingPolicy] = {}


def register_routing(
    name: str,
) -> _t.Callable[[type], type]:
    """Class decorator registering a :class:`RoutingPolicy` under ``name``."""

    def deco(cls: type) -> type:
        if name in ROUTING_POLICIES:
            raise ExperimentError(f"routing policy {name!r} already registered")
        ROUTING_POLICIES[name] = cls()
        return cls

    return deco


def _least_loaded(up: _t.Sequence[int], load: _t.Sequence[int]) -> int:
    """The up region with the fewest in-flight requests (ties by index)."""
    return min(up, key=lambda r: (load[r], r))


@register_routing("home-region")
class HomeRegionRouting:
    """Serve at home; drain to the least-loaded survivor only on outage."""

    def choose(
        self,
        home: int,
        up: _t.Sequence[int],
        load: _t.Sequence[int],
        ctx: RoutingContext,
    ) -> int:
        if home in up:
            return home
        return _least_loaded(up, load)


@register_routing("weighted")
class WeightedRouting:
    """Balance load across up regions proportionally to their weights."""

    def choose(
        self,
        home: int,
        up: _t.Sequence[int],
        load: _t.Sequence[int],
        ctx: RoutingContext,
    ) -> int:
        return min(up, key=lambda r: (load[r] / ctx.weights[r], r))


@register_routing("latency-aware")
class LatencyAwareRouting:
    """Minimise RTT from home plus a queueing penalty per in-flight request.

    The score trades the cross-region hop against local congestion: a
    saturated home region loses to a one-hop neighbour once its queue
    costs more than the link. Ties break toward home, then by index.
    """

    def choose(
        self,
        home: int,
        up: _t.Sequence[int],
        load: _t.Sequence[int],
        ctx: RoutingContext,
    ) -> int:
        return min(
            up,
            key=lambda r: (
                ctx.topology.rtt_ms(home, r)
                + load[r] * ctx.queue_penalty_ms,
                r != home,
                r,
            ),
        )


@register_routing("spillover")
class SpilloverRouting:
    """Serve at home until it saturates, then overflow to the least-loaded
    peer — the classic primary-with-overflow shape."""

    def choose(
        self,
        home: int,
        up: _t.Sequence[int],
        load: _t.Sequence[int],
        ctx: RoutingContext,
    ) -> int:
        if home in up and load[home] < ctx.fleet.capacity:
            return home
        peers = [r for r in up if r != home]
        if not peers:
            return home
        return _least_loaded(peers, load)


@dataclass(frozen=True)
class RoutingPlan:
    """The policy-independent outcome of routing one fleet cell's stream."""

    #: Serving region index per request, in global arrival order.
    assigned: tuple[int, ...]
    #: Per-request one-way RTT penalty (0 when served at home).
    rtt_ms: tuple[float, ...]
    #: Requests routed off-home while their home region was up.
    spillovers: int
    #: Requests routed off-home because their home region was dark.
    failovers: int
    #: Requests served per region.
    region_counts: tuple[int, ...]


class StreamRouter:
    """One request at a time, in arrival order — the routing state machine.

    The batch pass (:func:`route_requests`) and the always-on serving
    loop share this single implementation, so the sweep's routing
    semantics and the live service's are one and the same. Each routed
    request occupies its chosen region for ``hold_ms`` under the
    deterministic occupancy proxy; an active ``outage`` removes its
    region from the candidate list for arrivals inside the window.
    """

    def __init__(
        self,
        fleet: FleetConfig,
        hold_ms: float,
        outage: "RegionOutage | None" = None,
    ) -> None:
        n_regions = len(fleet.regions)
        if outage is not None and n_regions < 2:
            raise ExperimentError(
                "a region outage needs >= 2 regions to drain to"
            )
        self.fleet = fleet
        self.hold_ms = hold_ms
        self.outage = outage
        self.policy = ROUTING_POLICIES[fleet.routing]
        self.ctx = RoutingContext(
            fleet=fleet,
            topology=fleet.topology(),
            weights=fleet.effective_weights(),
            queue_penalty_ms=hold_ms / fleet.capacity,
        )
        self._all_up = list(range(n_regions))
        self._load = [0] * n_regions
        self._departing: list[tuple[float, int]] = []
        self.routed = 0
        self.spillovers = 0
        self.failovers = 0
        self.rtt_total_ms = 0.0
        self.region_counts = [0] * n_regions

    def route(self, home: int, t_ms: float) -> tuple[int, float]:
        """The serving region and one-way RTT penalty for one arrival."""
        departing, load = self._departing, self._load
        while departing and departing[0][0] <= t_ms:
            _, freed = heapq.heappop(departing)
            load[freed] -= 1
        outage = self.outage
        if outage is not None and outage.down_at(t_ms):
            up = [r for r in self._all_up if r != outage.region_index]
        else:
            up = self._all_up
        chosen = self.policy.choose(home, up, load, self.ctx)
        if chosen not in up:
            raise ExperimentError(
                f"routing policy {self.fleet.routing!r} chose a dark "
                f"region {chosen} at t={t_ms:g} ms"
            )
        if chosen != home:
            if home in up:
                self.spillovers += 1
            else:
                self.failovers += 1
        load[chosen] += 1
        heapq.heappush(departing, (t_ms + self.hold_ms, chosen))
        rtt = self.ctx.topology.rtt_ms(home, chosen)
        self.routed += 1
        self.rtt_total_ms += rtt
        self.region_counts[chosen] += 1
        return chosen, rtt


def route_requests(
    fleet: FleetConfig,
    homes: _t.Sequence[int],
    arrivals_ms: _t.Sequence[float],
    hold_ms: float,
    outage: "RegionOutage | None" = None,
) -> RoutingPlan:
    """Assign every request of one merged stream to a serving region.

    One deterministic pass in arrival order through a
    :class:`StreamRouter`. Conservation holds by construction — exactly
    one region per request, no drops, no duplicates.
    """
    router = StreamRouter(fleet, hold_ms, outage=outage)
    assigned: list[int] = []
    rtts: list[float] = []
    for home, t_ms in zip(homes, arrivals_ms):
        chosen, rtt = router.route(home, t_ms)
        assigned.append(chosen)
        rtts.append(rtt)
    return RoutingPlan(
        assigned=tuple(assigned),
        rtt_ms=tuple(rtts),
        spillovers=router.spillovers,
        failovers=router.failovers,
        region_counts=tuple(router.region_counts),
    )
