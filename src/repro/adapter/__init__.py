"""Provider-side online adaptation: lookup, supervision, service registry."""

from .adapter import AdaptationDecision, JanusAdapter
from .service import AdapterService
from .supervisor import HitMissSupervisor

__all__ = [
    "AdaptationDecision",
    "JanusAdapter",
    "AdapterService",
    "HitMissSupervisor",
]
