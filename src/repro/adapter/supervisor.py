"""Hit/miss supervision and regeneration triggering (paper §III-D).

The adapter "continuously counts the hits and misses during hint table
searches. In rare cases where the miss rate exceeds a predefined threshold,
it assumes that the execution time distribution may have changed" and
notifies the developer to regenerate the hints asynchronously.
"""

from __future__ import annotations

import typing as _t

from ..errors import AdapterError

__all__ = ["HitMissSupervisor"]

RegenerationCallback = _t.Callable[["HitMissSupervisor"], None]


class HitMissSupervisor:
    """Counts lookup hits/misses and fires a regeneration callback.

    Parameters
    ----------
    miss_threshold:
        Miss-rate threshold (paper default 1%).
    min_samples:
        Lookups required before the rate is considered meaningful; avoids
        spurious triggers on the first few requests.
    """

    def __init__(
        self,
        miss_threshold: float = 0.01,
        min_samples: int = 100,
    ) -> None:
        if not 0.0 < miss_threshold <= 1.0:
            raise AdapterError(
                f"miss threshold must be in (0, 1], got {miss_threshold}"
            )
        if min_samples < 1:
            raise AdapterError(f"min_samples must be >= 1, got {min_samples}")
        self.miss_threshold = float(miss_threshold)
        self.min_samples = int(min_samples)
        self.hits = 0
        self.misses = 0
        self._callbacks: list[RegenerationCallback] = []
        self._notified = False

    # -- accounting ---------------------------------------------------------
    @property
    def total(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0 when no lookups yet)."""
        return self.misses / self.total if self.total else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return 1.0 - self.miss_rate if self.total else 0.0

    def record(self, hit: bool) -> None:
        """Account one lookup and trigger regeneration when warranted."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if self.should_regenerate and not self._notified:
            self._notified = True
            for cb in self._callbacks:
                cb(self)

    @property
    def should_regenerate(self) -> bool:
        """True when the miss rate exceeds the threshold over enough samples."""
        return self.total >= self.min_samples and self.miss_rate > self.miss_threshold

    # -- notification ------------------------------------------------------
    def on_regenerate(self, callback: RegenerationCallback) -> None:
        """Register a developer-notification callback (fires at most once
        per :meth:`reset` cycle)."""
        self._callbacks.append(callback)

    def reset(self) -> None:
        """Clear counters after a regeneration completed (new tables live)."""
        self.hits = 0
        self.misses = 0
        self._notified = False

    def snapshot(self) -> dict[str, float]:
        """Counters as a plain dict (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
        }
