"""Hit/miss supervision and regeneration triggering (paper §III-D).

The adapter "continuously counts the hits and misses during hint table
searches. In rare cases where the miss rate exceeds a predefined threshold,
it assumes that the execution time distribution may have changed" and
notifies the developer to regenerate the hints asynchronously.

Two accounting modes:

* **Cumulative** (default, ``window=None``) — all-time counters, matching
  the batch experiments where a run sees one stationary workload.
* **Sliding window** (``window=N``) — the miss rate is computed over the
  last ``N`` lookups only, so a long-lived serving loop reacts to *recent*
  drift instead of having the trigger diluted by hours of healthy
  history. The all-time counters are still kept for reporting.
"""

from __future__ import annotations

import typing as _t
from collections import deque

import numpy as np

from ..errors import AdapterError

__all__ = ["HitMissSupervisor"]

RegenerationCallback = _t.Callable[["HitMissSupervisor"], None]


class HitMissSupervisor:
    """Counts lookup hits/misses and fires a regeneration callback.

    Parameters
    ----------
    miss_threshold:
        Miss-rate threshold (paper default 1%).
    min_samples:
        Lookups required before the rate is considered meaningful; avoids
        spurious triggers on the first few requests.
    window:
        When set, compute :attr:`miss_rate` over the last ``window``
        lookups (bounded deque) instead of all-time; ``min_samples`` must
        then fit inside the window.
    """

    def __init__(
        self,
        miss_threshold: float = 0.01,
        min_samples: int = 100,
        window: int | None = None,
    ) -> None:
        if not 0.0 < miss_threshold <= 1.0:
            raise AdapterError(
                f"miss threshold must be in (0, 1], got {miss_threshold}"
            )
        if min_samples < 1:
            raise AdapterError(f"min_samples must be >= 1, got {min_samples}")
        if window is not None:
            if window < 1:
                raise AdapterError(f"window must be >= 1, got {window}")
            if min_samples > window:
                raise AdapterError(
                    f"min_samples ({min_samples}) cannot exceed the "
                    f"window ({window}): the trigger could never fire"
                )
        self.miss_threshold = float(miss_threshold)
        self.min_samples = int(min_samples)
        self.window = int(window) if window is not None else None
        self.hits = 0
        self.misses = 0
        self._recent: deque[bool] | None = (
            deque(maxlen=self.window) if self.window else None
        )
        self._recent_misses = 0
        self._callbacks: list[RegenerationCallback] = []
        self._notified = False

    # -- accounting ---------------------------------------------------------
    @property
    def total(self) -> int:
        """Total lookups observed (all-time, regardless of mode)."""
        return self.hits + self.misses

    @property
    def window_total(self) -> int:
        """Lookups currently inside the window (== total when cumulative)."""
        if self._recent is None:
            return self.total
        return len(self._recent)

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0 when no lookups yet).

        Windowed mode: over the last :attr:`window` lookups only.
        """
        if self._recent is not None:
            n = len(self._recent)
            return self._recent_misses / n if n else 0.0
        return self.misses / self.total if self.total else 0.0

    @property
    def cumulative_miss_rate(self) -> float:
        """All-time miss fraction, independent of the window."""
        return self.misses / self.total if self.total else 0.0

    @property
    def hit_rate(self) -> float:
        """Complement of :attr:`miss_rate`."""
        return 1.0 - self.miss_rate if self.window_total else 0.0

    def record(self, hit: bool) -> None:
        """Account one lookup and trigger regeneration when warranted."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if self._recent is not None:
            if len(self._recent) == self.window and not self._recent[0]:
                # The oldest outcome rolls off the window's left edge.
                self._recent_misses -= 1
            self._recent.append(hit)
            if not hit:
                self._recent_misses += 1
        if self.should_regenerate and not self._notified:
            self._notified = True
            for cb in self._callbacks:
                cb(self)

    def record_many(self, hits: "np.ndarray | _t.Sequence[bool]") -> None:
        """Account a batch of lookups (vectorised executor hot path).

        Windowed mode and registered callbacks need per-sample trigger
        evaluation, so those fall back to the scalar loop. The cumulative
        no-callback case bulk-updates the counters and still evaluates the
        threshold at every prefix, so ``_notified`` flips exactly when the
        scalar loop would have flipped it.
        """
        if self._recent is not None or self._callbacks:
            for h in hits:
                self.record(bool(h))
            return
        arr = np.asarray(hits, dtype=bool)
        n = int(arr.size)
        if n == 0:
            return
        misses = self.misses + np.cumsum(~arr)
        totals = self.total + np.arange(1, n + 1)
        self.hits += int(arr.sum())
        self.misses = int(misses[-1])
        if not self._notified:
            crossed = (totals >= self.min_samples) & (
                misses / totals > self.miss_threshold
            )
            if bool(crossed.any()):
                self._notified = True

    @property
    def should_regenerate(self) -> bool:
        """True when the miss rate exceeds the threshold over enough samples."""
        return (
            self.window_total >= self.min_samples
            and self.miss_rate > self.miss_threshold
        )

    # -- notification ------------------------------------------------------
    def on_regenerate(self, callback: RegenerationCallback) -> None:
        """Register a developer-notification callback (fires at most once
        per :meth:`reset` cycle)."""
        self._callbacks.append(callback)

    def reset(self) -> None:
        """Clear counters after a regeneration completed (new tables live)."""
        self.hits = 0
        self.misses = 0
        if self._recent is not None:
            self._recent.clear()
        self._recent_misses = 0
        self._notified = False

    def snapshot(self) -> dict[str, float]:
        """Counters as a plain dict (for reports)."""
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
        }
        if self._recent is not None:
            out["window"] = float(self.window or 0)
            out["window_total"] = float(len(self._recent))
            out["cumulative_miss_rate"] = self.cumulative_miss_rate
        return out
