"""The provider-side adapter (paper §III-D).

When a stage of a workflow request finishes, the platform reports the
elapsed time; the adapter derives the remaining budget ``SLO - elapsed``,
searches the condensed hints table of the remaining sub-workflow, and
returns the size for the next head function. A miss (budget below the
table's covered range — unexpected runtime dynamics) scales the function to
``Kmax`` to protect the SLO.

The adapter is stateless with respect to individual requests (the platform
traces per-request elapsed time), which is what makes it trivially
horizontally scalable (§V-A implementation note).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np  # noqa: F401  (annotations for the batched API)

from ..errors import AdapterError
from ..synthesis.hints import WorkflowHints
from ..types import Millicores, Milliseconds
from .supervisor import HitMissSupervisor

__all__ = ["AdaptationDecision", "JanusAdapter"]


@dataclass(frozen=True)
class AdaptationDecision:
    """The adapter's answer for one stage of one request."""

    stage_index: int
    function: str
    size: Millicores
    hit: bool
    budget_ms: Milliseconds
    decision_latency_ms: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AdapterError(f"decision size must be > 0, got {self.size}")


class JanusAdapter:
    """Online resource adaptation for one deployed workflow."""

    def __init__(
        self,
        hints: WorkflowHints,
        slo_ms: Milliseconds,
        supervisor: HitMissSupervisor | None = None,
    ) -> None:
        if slo_ms <= 0:
            raise AdapterError(f"SLO must be > 0, got {slo_ms}")
        self.hints = hints
        self.slo_ms = float(slo_ms)
        self.supervisor = supervisor or HitMissSupervisor()
        self._decision_latencies_ms: list[float] = []

    @property
    def num_stages(self) -> int:
        """Number of functions in the workflow chain."""
        return self.hints.num_stages

    # ------------------------------------------------------------------
    def decide(
        self, stage_index: int, budget_ms: Milliseconds
    ) -> AdaptationDecision:
        """Size the head of the sub-workflow starting at ``stage_index``.

        ``budget_ms`` is the remaining time budget (SLO minus elapsed). A
        non-positive budget is already a violation in the making; the adapter
        still answers (with ``Kmax``) so the request completes as fast as
        possible.
        """
        t0 = time.perf_counter()
        table = self.hints.table_for_stage(stage_index)
        result = table.lookup(budget_ms)
        latency_ms = (time.perf_counter() - t0) * 1e3
        self._decision_latencies_ms.append(latency_ms)
        self.supervisor.record(result.hit)
        return AdaptationDecision(
            stage_index=stage_index,
            function=table.head_function,
            size=result.size,
            hit=result.hit,
            budget_ms=float(budget_ms),
            decision_latency_ms=latency_ms,
        )

    def decide_many(
        self, stage_index: int, budgets_ms: "np.ndarray"
    ) -> tuple["np.ndarray", "np.ndarray"]:
        """Batched :meth:`decide` for one stage across many requests.

        Returns ``(sizes, hits)`` arrays aligned with ``budgets_ms``. The
        supervisor sees every hit/miss and the latency log gains one entry
        per decision (the amortised per-decision cost of the vector lookup),
        so the §V-H overhead accounting keeps its one-row-per-decision shape.
        """
        t0 = time.perf_counter()
        table = self.hints.table_for_stage(stage_index)
        sizes, hits = table.lookup_many(budgets_ms)
        latency_ms = (time.perf_counter() - t0) * 1e3
        n = int(sizes.size)
        if n:
            self._decision_latencies_ms.extend([latency_ms / n] * n)
            self.supervisor.record_many(hits)
        return sizes, hits

    def initial_decision(self) -> AdaptationDecision:
        """Decision for the first stage: the budget is the full SLO."""
        return self.decide(0, self.slo_ms)

    def on_stage_complete(
        self, completed_stage: int, elapsed_ms: Milliseconds
    ) -> AdaptationDecision | None:
        """Re-adapt after ``completed_stage`` finished ``elapsed_ms`` into
        the request. Returns ``None`` when the workflow is complete."""
        if elapsed_ms < 0:
            raise AdapterError(f"elapsed time must be >= 0, got {elapsed_ms}")
        next_stage = completed_stage + 1
        if next_stage >= self.num_stages:
            return None
        return self.decide(next_stage, self.slo_ms - elapsed_ms)

    # -- diagnostics ------------------------------------------------------
    def decision_latencies_ms(self) -> list[float]:
        """All measured decision latencies (for the §V-H overhead study)."""
        return list(self._decision_latencies_ms)

    def replace_hints(self, hints: WorkflowHints) -> None:
        """Swap in regenerated tables (asynchronous regeneration, §III-D)."""
        if hints.num_stages != self.hints.num_stages:
            raise AdapterError(
                f"regenerated hints have {hints.num_stages} stages, "
                f"expected {self.hints.num_stages}"
            )
        self.hints = hints
        self.supervisor.reset()
