"""Multi-tenant adapter service.

Mirrors the paper's backend deployment (a Flask/Redis service receiving
hints tables and serving adaptation decisions): hints are "managed
separately for each tenant and each workflow" (§III-A). The service is the
provider-facing registry; each registered workflow gets its own
:class:`JanusAdapter` + :class:`HitMissSupervisor`.
"""

from __future__ import annotations

import typing as _t

from ..errors import AdapterError
from ..synthesis.hints import WorkflowHints
from ..types import Milliseconds
from .adapter import AdaptationDecision, JanusAdapter
from .supervisor import HitMissSupervisor

__all__ = ["AdapterService"]


class AdapterService:
    """Registry of per-(tenant, workflow) adapters."""

    def __init__(self, miss_threshold: float = 0.01, min_samples: int = 100) -> None:
        self._adapters: dict[tuple[str, str], JanusAdapter] = {}
        self._miss_threshold = miss_threshold
        self._min_samples = min_samples
        self._regeneration_requests: list[tuple[str, str]] = []

    # -- registration -------------------------------------------------------
    def register(
        self,
        tenant: str,
        workflow: str,
        hints: WorkflowHints,
        slo_ms: Milliseconds,
    ) -> JanusAdapter:
        """Deploy (or replace) hint tables for a tenant's workflow."""
        key = (tenant, workflow)
        existing = self._adapters.get(key)
        if existing is not None:
            existing.replace_hints(hints)
            return existing
        supervisor = HitMissSupervisor(self._miss_threshold, self._min_samples)

        def _notify(_sup: HitMissSupervisor, _key=key) -> None:
            self._regeneration_requests.append(_key)

        supervisor.on_regenerate(_notify)
        adapter = JanusAdapter(hints, slo_ms, supervisor)
        self._adapters[key] = adapter
        return adapter

    def unregister(self, tenant: str, workflow: str) -> None:
        """Remove a deployed workflow."""
        try:
            del self._adapters[(tenant, workflow)]
        except KeyError:
            raise AdapterError(f"unknown workflow {workflow!r} for {tenant!r}")

    def adapter(self, tenant: str, workflow: str) -> JanusAdapter:
        """The adapter for a deployed workflow."""
        try:
            return self._adapters[(tenant, workflow)]
        except KeyError:
            raise AdapterError(f"unknown workflow {workflow!r} for {tenant!r}")

    def workflows(self) -> list[tuple[str, str]]:
        """All registered (tenant, workflow) pairs."""
        return list(self._adapters)

    # -- serving ---------------------------------------------------------------
    def decide(
        self,
        tenant: str,
        workflow: str,
        stage_index: int,
        budget_ms: Milliseconds,
    ) -> AdaptationDecision:
        """Adaptation decision for one stage of one request."""
        return self.adapter(tenant, workflow).decide(stage_index, budget_ms)

    # -- regeneration feedback loop ------------------------------------------
    def pending_regenerations(self) -> list[tuple[str, str]]:
        """Workflows whose miss rate crossed the threshold (drains queue)."""
        out, self._regeneration_requests = self._regeneration_requests, []
        return out

    def stats(self) -> dict[tuple[str, str], dict[str, float]]:
        """Hit/miss snapshots for every deployed workflow."""
        return {
            key: adapter.supervisor.snapshot()
            for key, adapter in self._adapters.items()
        }
