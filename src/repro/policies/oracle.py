"""The Optimal oracle — "the best that can be achieved in any late-binding
solution" (paper §V-A).

The oracle sees each request's realised execution dynamics *in advance*
(possible here because requests carry their pre-drawn
:class:`InvocationDynamics`) and solves, per request, the minimum-resource
allocation whose *actual* stage times fit the SLO:

    min sum_i k_i   s.t.   sum_i t_i(k_i; request) <= SLO.

Solved exactly with the same shift-and-min dynamic program as the
synthesizer, but over actual (not percentile) durations. When even Kmax
everywhere cannot meet the SLO (an inherently slow request), the oracle
allocates Kmax — the violation is unavoidable for any policy.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import PolicyError
from ..types import Millicores, Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .base import SizingPolicy

__all__ = ["OraclePolicy"]


class OraclePolicy(SizingPolicy):
    """Per-request exhaustive-optimal allocation (clairvoyant)."""

    late_binding = True
    name = "Optimal"

    def __init__(self, workflow: Workflow, slo_ms: Milliseconds | None = None) -> None:
        self.workflow = workflow
        self.stage_order = tuple(workflow.chain)
        self.slo_ms = float(slo_ms if slo_ms is not None else workflow.slo_ms)
        self._plan: dict[int, list[Millicores]] = {}
        self._k_grid = workflow.limits.grid()

    # ------------------------------------------------------------------
    def _actual_durations(self, request: WorkflowRequest) -> np.ndarray:
        """``int64[N, K]``: ceil of actual stage time per allocation."""
        chain = self.workflow.chain
        num_k = self._k_grid.size
        rows = []
        for fname in chain:
            model = self.workflow.model(fname)
            dyn = request.dynamics_for(fname)
            times = model.execution_times(
                self._k_grid,
                np.full(num_k, dyn.workset),
                np.full(num_k, dyn.noise_z),
                np.full(num_k, dyn.interference),
                np.full(num_k, request.concurrency, dtype=np.int64),
            )
            rows.append(np.ceil(times).astype(np.int64))
        return np.stack(rows)

    def _solve(self, request: WorkflowRequest) -> list[Millicores]:
        durations = self._actual_durations(request)
        n, num_k = durations.shape
        tmax = int(self.slo_ms)
        size = tmax + 1
        k_vals = self._k_grid.astype(np.float64)

        cost = np.full((n, size), np.inf)
        argk = np.full((n, size), -1, dtype=np.int32)
        # Backward DP identical in structure to synthesis.ChainDP, with the
        # oracle's actual durations in place of anchor-percentile ones.
        for j in range(n - 1, -1, -1):
            if j == n - 1:
                for ki in range(num_k - 1, -1, -1):
                    d = int(durations[j, ki])
                    if d <= tmax:
                        cost[j, d:] = k_vals[ki]
                        argk[j, d:] = ki
                continue
            cand = np.full((num_k, size), np.inf)
            for ki in range(num_k):
                d = int(durations[j, ki])
                if d <= tmax:
                    cand[ki, d:] = k_vals[ki] + cost[j + 1, : size - d]
            best = np.argmin(cand, axis=0).astype(np.int32)
            best_cost = cand[best, np.arange(size)]
            cost[j] = best_cost
            argk[j] = np.where(np.isfinite(best_cost), best, -1)

        if not np.isfinite(cost[0, tmax]):
            # SLO unattainable for this request even at Kmax: burn maximum
            # resources to finish as early as possible (any policy violates).
            return [int(self.workflow.limits.kmax)] * n

        plan: list[Millicores] = []
        budget = tmax
        for j in range(n):
            ki = int(argk[j, budget])
            plan.append(int(self._k_grid[ki]))
            budget -= int(durations[j, ki])
        return plan

    # -- policy interface ------------------------------------------------
    def begin_request(self, request: WorkflowRequest) -> None:
        self._plan[request.request_id] = self._solve(request)

    def size_for_stage(
        self,
        stage_index: int,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        plan = self._plan.get(request.request_id)
        if plan is None:
            raise PolicyError(
                f"Oracle: begin_request not called for request {request.request_id}"
            )
        if not 0 <= stage_index < len(plan):
            raise PolicyError(f"Oracle: stage {stage_index} out of range")
        return plan[stage_index]

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: np.ndarray,
    ) -> np.ndarray:
        stage_index = self._stage_index(node)
        out = np.empty(len(requests), dtype=np.int64)
        for i, request in enumerate(requests):
            plan = self._plan.get(request.request_id)
            if plan is None:
                raise PolicyError(
                    f"Oracle: begin_request not called for request "
                    f"{request.request_id}"
                )
            if not 0 <= stage_index < len(plan):
                raise PolicyError(f"Oracle: stage {stage_index} out of range")
            out[i] = plan[stage_index]
        return out

    def end_request(self, request: WorkflowRequest) -> None:
        self._plan.pop(request.request_id, None)
