"""Node-keyed sizing policies for branching workflows (paper §VII).

These policies answer natively by function name because parallel branches
have no global stage order. They are plain :class:`SizingPolicy` subclasses
since the unification of the chain and DAG interfaces — the separate
``DagSizingPolicy`` base survives only as a deprecated alias for older
subclasses and ``isinstance`` checks.

:class:`DagJanusPolicy` is the late-binding adaptation policy over
per-function hint tables; :class:`DagFixedPolicy` carries a fixed
allocation map (early binding); :class:`DagGrandSLAMPolicy` sizes uniformly
against the critical path's anchor-percentile latency.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..adapter.supervisor import HitMissSupervisor
from ..errors import PolicyError
from ..profiling.profiles import ProfileSet
from ..synthesis.dag import DagWorkflowHints
from ..types import Millicores, Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .base import SizingPolicy

__all__ = [
    "DagSizingPolicy",
    "DagFixedPolicy",
    "DagGrandSLAMPolicy",
    "DagJanusPolicy",
]


class DagSizingPolicy(SizingPolicy):
    """Deprecated: the unified :class:`SizingPolicy` serves both topologies.

    Kept so existing subclasses (which override ``size_for_function``) and
    ``isinstance`` checks keep working; new policies should subclass
    :class:`SizingPolicy` and override :meth:`SizingPolicy.size_for_node`.
    """

    name: str = "dag-policy"


class DagFixedPolicy(DagSizingPolicy):
    """Early binding: immutable per-function allocation map."""

    def __init__(self, name: str, plan: _t.Mapping[str, Millicores]) -> None:
        if not plan:
            raise PolicyError("plan may not be empty")
        if any(k <= 0 for k in plan.values()):
            raise PolicyError(f"plan sizes must be positive: {plan}")
        self.name = name
        self.plan = dict(plan)

    def size_for_node(
        self,
        node: str,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        try:
            return self.plan[node]
        except KeyError:
            raise PolicyError(f"{self.name}: no plan entry for {node!r}")

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: "np.ndarray",
    ) -> "np.ndarray":
        try:
            size = self.plan[node]
        except KeyError:
            raise PolicyError(f"{self.name}: no plan entry for {node!r}")
        return np.full(len(requests), size, dtype=np.int64)

    @property
    def total_millicores(self) -> int:
        """Sum of the fixed allocation."""
        return sum(self.plan.values())


class DagGrandSLAMPolicy(DagFixedPolicy):
    """Uniform sizes against the critical path's P99 latency."""

    def __init__(
        self,
        workflow: Workflow,
        profiles: ProfileSet,
        slo_ms: Milliseconds | None = None,
        name: str = "GrandSLAM-DAG",
    ) -> None:
        slo = float(slo_ms if slo_ms is not None else workflow.slo_ms)
        anchor = profiles.percentiles.anchor
        limits = workflow.limits
        chosen: Millicores | None = None
        for k in limits.grid():
            weights = {
                n: profiles[n].latency(anchor, int(k)) for n in workflow.dag.nodes
            }
            path = workflow.dag.critical_path(weights)
            if sum(weights[n] for n in path) <= slo:
                chosen = int(k)
                break
        if chosen is None:
            raise PolicyError(
                f"DagGrandSLAM: no uniform size meets SLO {slo} ms"
            )
        super().__init__(name, {n: chosen for n in workflow.dag.nodes})


class DagJanusPolicy(DagSizingPolicy):
    """Late binding over per-function hint tables."""

    late_binding = True

    def __init__(
        self,
        workflow: Workflow,
        hints: DagWorkflowHints,
        slo_ms: Milliseconds | None = None,
        name: str = "Janus-DAG",
    ) -> None:
        missing = [n for n in workflow.dag.nodes if n not in hints.tables]
        if missing:
            raise PolicyError(f"{name}: hints missing for {missing}")
        self.name = name
        self.workflow = workflow
        self.hints = hints
        self.slo_ms = float(slo_ms if slo_ms is not None else workflow.slo_ms)
        self.supervisor = HitMissSupervisor()

    def size_for_node(
        self,
        node: str,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        budget = self.slo_ms - elapsed_ms
        result = self.hints.table_for(node).lookup(budget)
        self.supervisor.record(result.hit)
        return result.size

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: "np.ndarray",
    ) -> "np.ndarray":
        budgets = self.slo_ms - np.asarray(elapsed_ms, dtype=np.float64)
        sizes, hits = self.hints.table_for(node).lookup_many(budgets)
        self.supervisor.record_many(hits)
        return sizes

    @property
    def hit_rate(self) -> float:
        """Fraction of table lookups that hit."""
        return self.supervisor.hit_rate

    @property
    def synthesis_seconds(self) -> float:
        """Offline synthesis time of the deployed tables."""
        return self.hints.synthesis_seconds
