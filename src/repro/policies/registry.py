"""Policy registry: every evaluated system resolved by name.

The registry replaces the hardcoded lambda table that used to live in
:mod:`repro.runtime.driver`: ``build_policy_suite``, the CLI, the
experiments, and the :class:`~repro.api.Session` facade all resolve policy
names through the shared :data:`POLICIES` instance, so a new system plugs
in with one :meth:`PolicyRegistry.register` call instead of edits across
layers.

Builders are *topology-aware*: they receive the workflow and dispatch on
:attr:`Workflow.topology`, so ``"Janus"`` yields a
:class:`~repro.policies.janus.JanusPolicy` over chain hint tables for a
chain and a :class:`~repro.policies.dag.DagJanusPolicy` over per-function
tables for a branching workflow. Chain-only systems (the clairvoyant
oracle, ORION's convolution) raise :class:`PolicyError` on DAG input, which
``build_policy_suite`` treats like an infeasible configuration and skips.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError, PolicyError
from ..profiling.profiles import ProfileSet
from ..synthesis.budget import BudgetRange
from ..synthesis.dag import synthesize_dag_hints
from ..synthesis.generator import HeadExploration
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from .base import SizingPolicy
from .dag import DagGrandSLAMPolicy, DagJanusPolicy
from .early_binding import GrandSLAMPlusPolicy, GrandSLAMPolicy
from .janus import janus, janus_minus, janus_plus
from .oracle import OraclePolicy
from .orion import OrionPolicy

__all__ = [
    "PolicyBuilder",
    "ProfilesArg",
    "PolicyRegistry",
    "POLICIES",
    "DEFAULT_SUITE",
    "JANUS_EXPLORATIONS",
]

#: Canonical policy order used in the paper's figures.
DEFAULT_SUITE = [
    "Optimal",
    "ORION",
    "Janus-",
    "Janus+",
    "Janus",
    "GrandSLAM+",
    "GrandSLAM",
]

PolicyBuilder = _t.Callable[..., SizingPolicy]

#: What builders accept as profiling input: a ready ProfileSet, a zero-arg
#: callable producing one (resolved only if the builder needs profiles —
#: lets facades defer the campaign), or None.
ProfilesArg = _t.Union[ProfileSet, _t.Callable[[], ProfileSet], None]


class PolicyRegistry:
    """Named policy builders, callable as ``builder(workflow, profiles, **kw)``.

    Builders receive the standard evaluation knobs (``budget``,
    ``concurrency``, ``weight``, ``slo_ms``) plus any caller extras; they
    are free to ignore what they don't use. Unknown names raise
    :class:`ExperimentError`; infeasible configurations raise
    :class:`PolicyError` so suite construction can skip them.
    """

    def __init__(self) -> None:
        self._builders: dict[str, PolicyBuilder] = {}

    def register(
        self, name: str, builder: PolicyBuilder | None = None
    ) -> _t.Callable[[PolicyBuilder], PolicyBuilder] | PolicyBuilder:
        """Add ``builder`` under ``name`` (usable as a decorator)."""

        def add(fn: PolicyBuilder) -> PolicyBuilder:
            self._builders[name] = fn
            return fn

        return add(builder) if builder is not None else add

    def names(self) -> list[str]:
        """Registered policy names, in registration order."""
        return list(self._builders)

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def __iter__(self) -> _t.Iterator[str]:
        return iter(self._builders)

    def build(
        self,
        name: str,
        workflow: Workflow,
        profiles: ProfilesArg = None,
        **kwargs: _t.Any,
    ) -> SizingPolicy:
        """Instantiate the policy registered under ``name``.

        ``profiles`` may be a zero-arg callable; builders resolve it through
        :func:`_require_profiles` only when they actually consume profiles,
        so e.g. the clairvoyant oracle never triggers a profiling campaign.
        """
        try:
            builder = self._builders[name]
        except KeyError:
            raise ExperimentError(
                f"unknown policy {name!r}; known: {self.names()}"
            )
        return builder(workflow, profiles, **kwargs)


#: The shared default registry every layer resolves through.
POLICIES = PolicyRegistry()


def _require_chain(workflow: Workflow, name: str) -> None:
    if workflow.topology != "chain":
        raise PolicyError(
            f"{name} supports chain workflows only, "
            f"got topology {workflow.topology!r} ({workflow.name})"
        )


def _require_profiles(profiles: ProfilesArg, name: str) -> ProfileSet:
    if callable(profiles):
        profiles = profiles()
    if profiles is None:
        raise ExperimentError(f"{name} requires a profile set")
    return profiles


@POLICIES.register("Optimal")
def _build_optimal(
    workflow: Workflow,
    profiles: ProfilesArg = None,
    slo_ms: Milliseconds | None = None,
    **_: _t.Any,
) -> SizingPolicy:
    _require_chain(workflow, "Optimal")
    return OraclePolicy(workflow, slo_ms=slo_ms)


@POLICIES.register("ORION")
def _build_orion(
    workflow: Workflow,
    profiles: ProfilesArg = None,
    concurrency: int = 1,
    slo_ms: Milliseconds | None = None,
    **_: _t.Any,
) -> SizingPolicy:
    _require_chain(workflow, "ORION")
    return OrionPolicy(
        workflow, _require_profiles(profiles, "ORION"),
        concurrency=concurrency, slo_ms=slo_ms,
    )


@POLICIES.register("GrandSLAM")
def _build_grandslam(
    workflow: Workflow,
    profiles: ProfilesArg = None,
    concurrency: int = 1,
    slo_ms: Milliseconds | None = None,
    label: str | None = None,
    **_: _t.Any,
) -> SizingPolicy:
    profiles = _require_profiles(profiles, "GrandSLAM")
    if workflow.topology == "dag":
        # Default to the requested registry name so suite keys and
        # RunResult.policy_name agree; ``label`` overrides for callers that
        # want an explicit topology-suffixed name.
        return DagGrandSLAMPolicy(
            workflow, profiles, slo_ms=slo_ms, name=label or "GrandSLAM"
        )
    policy = GrandSLAMPolicy(
        workflow, profiles, concurrency=concurrency, slo_ms=slo_ms
    )
    if label:
        policy.name = label
    return policy


@POLICIES.register("GrandSLAM+")
def _build_grandslam_plus(
    workflow: Workflow,
    profiles: ProfilesArg = None,
    concurrency: int = 1,
    slo_ms: Milliseconds | None = None,
    **_: _t.Any,
) -> SizingPolicy:
    _require_chain(workflow, "GrandSLAM+")
    return GrandSLAMPlusPolicy(
        workflow, _require_profiles(profiles, "GrandSLAM+"),
        concurrency=concurrency, slo_ms=slo_ms,
    )


_JANUS_CHAIN_BUILDERS = {
    "Janus": janus,
    "Janus-": janus_minus,
    "Janus+": janus_plus,
}

#: Exploration mode behind each Janus variant name (used by the Session
#: facade to decide whether memoised hints can be redeployed).
JANUS_EXPLORATIONS = {
    "Janus": HeadExploration.HEAD_ONLY,
    "Janus-": HeadExploration.NONE,
    "Janus+": HeadExploration.HEAD_PLUS_NEXT,
}


def _make_janus_builder(variant: str) -> PolicyBuilder:
    def build(
        workflow: Workflow,
        profiles: ProfilesArg = None,
        budget: BudgetRange | None = None,
        concurrency: int = 1,
        weight: float = 1.0,
        slo_ms: Milliseconds | None = None,
        enforce_resilience: bool = True,
        hints: _t.Any = None,
        label: str | None = None,
        exploration: HeadExploration | None = None,
        **_: _t.Any,
    ) -> SizingPolicy:
        if exploration is not None and exploration is not JANUS_EXPLORATIONS[variant]:
            # The variant name *is* the exploration mode — refusing beats
            # silently synthesizing with the hard-coded one.
            raise ExperimentError(
                f"exploration is determined by the policy name ({variant!r} "
                f"-> {JANUS_EXPLORATIONS[variant].value!r}); request the "
                f"matching variant instead of overriding exploration"
            )
        if workflow.topology == "dag":
            if hints is None:
                profiles = _require_profiles(profiles, variant)
                hints = synthesize_dag_hints(
                    workflow, profiles, budget=budget, concurrency=concurrency,
                    weight=weight, exploration=JANUS_EXPLORATIONS[variant],
                    enforce_resilience=enforce_resilience,
                )
            # Same naming rule as GrandSLAM: suite key by default.
            return DagJanusPolicy(
                workflow, hints, slo_ms=slo_ms, name=label or variant
            )
        # With hints supplied the chain builder never touches profiles —
        # don't resolve a deferred campaign just to pass it along.
        profiles = (
            _require_profiles(profiles, variant) if hints is None else None
        )
        policy = _JANUS_CHAIN_BUILDERS[variant](
            workflow, profiles, budget=budget, concurrency=concurrency,
            weight=weight, slo_ms=slo_ms,
            enforce_resilience=enforce_resilience, hints=hints,
        )
        if label:
            policy.name = label
        return policy

    build.__name__ = f"_build_{variant.lower().replace('+', '_plus').replace('-', '_minus')}"
    return build


for _variant in _JANUS_CHAIN_BUILDERS:
    POLICIES.register(_variant, _make_janus_builder(_variant))
