"""The Janus policy family: Janus, Janus-, Janus+ (paper §V-A baselines).

Each variant wraps the full developer/provider pipeline:

1. profile the workflow (done by the caller, shared across policies),
2. synthesize hints with the variant's exploration mode,
3. serve requests through a provider-side :class:`JanusAdapter`.

Variants differ only in percentile exploration during synthesis:
``Janus-`` pins heads to P99, ``Janus`` explores the head, ``Janus+``
explores head and next-to-head (much slower to synthesize, Fig. 6b).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..adapter.adapter import JanusAdapter
from ..adapter.supervisor import HitMissSupervisor
from ..errors import PolicyError
from ..profiling.profiles import ProfileSet
from ..synthesis.budget import BudgetRange
from ..synthesis.generator import HeadExploration, synthesize_hints
from ..synthesis.hints import WorkflowHints
from ..types import Millicores, Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .base import SizingPolicy

__all__ = ["JanusPolicy", "janus", "janus_minus", "janus_plus"]


class JanusPolicy(SizingPolicy):
    """Late-binding adaptation driven by synthesized hint tables."""

    late_binding = True

    def __init__(
        self,
        workflow: Workflow,
        hints: WorkflowHints,
        slo_ms: Milliseconds | None = None,
        name: str = "Janus",
        miss_threshold: float = 0.01,
    ) -> None:
        if hints.num_stages != workflow.num_functions:
            raise PolicyError(
                f"{name}: hints cover {hints.num_stages} stages, workflow has "
                f"{workflow.num_functions}"
            )
        self.name = name
        self.workflow = workflow
        self.stage_order = tuple(workflow.chain)
        self.adapter = JanusAdapter(
            hints,
            slo_ms if slo_ms is not None else workflow.slo_ms,
            HitMissSupervisor(miss_threshold=miss_threshold),
        )

    def size_for_stage(
        self,
        stage_index: int,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        budget = self.adapter.slo_ms - elapsed_ms
        return self.adapter.decide(stage_index, budget).size

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: "np.ndarray",
    ) -> "np.ndarray":
        budgets = self.adapter.slo_ms - np.asarray(elapsed_ms, dtype=np.float64)
        sizes, _ = self.adapter.decide_many(self._stage_index(node), budgets)
        return sizes

    # -- diagnostics -------------------------------------------------------
    @property
    def hints(self) -> WorkflowHints:
        """The currently deployed hint tables."""
        return self.adapter.hints

    @property
    def hit_rate(self) -> float:
        """Fraction of hint-table lookups that hit."""
        return self.adapter.supervisor.hit_rate

    @property
    def synthesis_seconds(self) -> float:
        """Offline synthesis time of the deployed tables (Fig. 6b)."""
        return self.adapter.hints.synthesis_seconds


def _build(
    workflow: Workflow,
    profiles: ProfileSet,
    exploration: HeadExploration,
    name: str,
    budget: BudgetRange | None,
    concurrency: int,
    weight: float,
    slo_ms: Milliseconds | None,
    enforce_resilience: bool = True,
    hints: WorkflowHints | None = None,
) -> JanusPolicy:
    if hints is None:
        hints = synthesize_hints(
            profiles,
            workflow.chain,
            budget=budget,
            concurrency=concurrency,
            weight=weight,
            exploration=exploration,
            enforce_resilience=enforce_resilience,
            workflow_name=workflow.name,
        )
    return JanusPolicy(workflow, hints, slo_ms=slo_ms, name=name)


def janus(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    slo_ms: Milliseconds | None = None,
    enforce_resilience: bool = True,
    hints: WorkflowHints | None = None,
) -> JanusPolicy:
    """Janus: head-function percentile exploration (the paper's system).

    Pass pre-synthesized ``hints`` to deploy existing tables instead of
    running synthesis again.
    """
    return _build(
        workflow, profiles, HeadExploration.HEAD_ONLY, "Janus",
        budget, concurrency, weight, slo_ms, enforce_resilience, hints,
    )


def janus_minus(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    slo_ms: Milliseconds | None = None,
    enforce_resilience: bool = True,
    hints: WorkflowHints | None = None,
) -> JanusPolicy:
    """Janus-: exploration disabled, heads pinned to P99."""
    return _build(
        workflow, profiles, HeadExploration.NONE, "Janus-",
        budget, concurrency, weight, slo_ms, enforce_resilience, hints,
    )


def janus_plus(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    slo_ms: Milliseconds | None = None,
    enforce_resilience: bool = True,
    hints: WorkflowHints | None = None,
) -> JanusPolicy:
    """Janus+: head and next-to-head exploration (costly synthesis)."""
    return _build(
        workflow, profiles, HeadExploration.HEAD_PLUS_NEXT, "Janus+",
        budget, concurrency, weight, slo_ms, enforce_resilience, hints,
    )
