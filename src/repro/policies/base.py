"""Sizing-policy interface.

A policy answers one question: *how many millicores should stage ``i`` of
this request get?* Early-binding policies answer from a fixed offline plan;
late-binding policies may use the request's elapsed time (Janus) or even its
realised execution dynamics (the Optimal oracle).
"""

from __future__ import annotations

import abc

from ..types import Millicores, Milliseconds
from ..workflow.request import WorkflowRequest

__all__ = ["SizingPolicy"]


class SizingPolicy(abc.ABC):
    """Per-stage allocation decisions for workflow requests."""

    #: Human-readable policy name (used in reports and plots).
    name: str = "policy"

    #: True for policies that may change sizes at runtime.
    late_binding: bool = False

    def begin_request(self, request: WorkflowRequest) -> None:
        """Hook invoked when a request starts (before stage 0 sizing)."""

    @abc.abstractmethod
    def size_for_stage(
        self,
        stage_index: int,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        """Allocation for ``stage_index`` given time already spent."""

    def end_request(self, request: WorkflowRequest) -> None:
        """Hook invoked after the last stage completes."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
