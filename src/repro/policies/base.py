"""Sizing-policy interface.

A policy answers one question: *how many millicores should this node of
this request get?* Early-binding policies answer from a fixed offline plan;
late-binding policies may use the request's elapsed time (Janus) or even its
realised execution dynamics (the Optimal oracle).

The canonical entry point is :meth:`SizingPolicy.size_for_node`, keyed by
``(node, request, elapsed_ms)``: a chain is just a degenerate DAG (see
:func:`repro.workflow.chain.chain_dag`), so one interface serves both
topologies. Two compatibility shims keep older policies working:

* :meth:`size_for_stage` — the historical chain API, keyed by stage index.
  The base implementation maps the index onto :attr:`stage_order` and
  delegates to :meth:`size_for_node`; stage-indexed policies may still
  override it and the base :meth:`size_for_node` routes back through it.
* :meth:`size_for_function` — the historical DAG API. It is now a plain
  alias of :meth:`size_for_node`; legacy policies that override it are
  dispatched to transparently.

A concrete policy must override at least one of the three methods.
"""

from __future__ import annotations

import abc
import typing as _t

import numpy as np

from ..errors import PolicyError
from ..types import Millicores, Milliseconds
from ..workflow.request import WorkflowRequest

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..workflow.catalog import Workflow

__all__ = ["SizingPolicy"]


class SizingPolicy(abc.ABC):
    """Per-node allocation decisions for workflow requests."""

    #: Human-readable policy name (used in reports and plots).
    name: str = "policy"

    #: True for policies that may change sizes at runtime.
    late_binding: bool = False

    #: Node names in execution order, used to translate between the
    #: stage-indexed chain API and the node-keyed interface. Executors call
    #: :meth:`bind` to (re)derive it from the workflow they serve.
    stage_order: tuple[str, ...] | None = None

    #: True when sizing depends only on ``(node, request, elapsed)`` — not
    #: on the interleaving of calls across requests — so executors may run
    #: the batched :meth:`sizes_for_node` path (hooks fire begin-all /
    #: node-major / end-all instead of request-major). Order-dependent
    #: policies set this False to force the scalar request-major path.
    vector_safe: bool = True

    #: Workflow this policy was last bound to (identity-checked by bind()).
    _bound_workflow: "Workflow | None" = None

    #: name -> stage index, derived by bind() alongside stage_order.
    _node_index: dict[str, int] | None = None

    def bind(self, workflow: "Workflow") -> None:
        """Attach ``workflow``'s execution order for index/name translation.

        Executors call it per request, so rebinding to the same workflow is
        an identity check — ``workflow.chain`` (a critical-path search on
        branching DAGs) is only evaluated when the workflow changes.
        Positional policies (fixed plans, hint tables) need this to answer
        node-keyed queries. Rebinding across workflows with the *same*
        execution order (SLO variants of one app, tenants running the same
        catalog workflow) is a no-op, so such sharing stays safe; sharing
        one instance across workflows with *different* function orders is
        unsupported — the binding is mutable state, use one policy per
        workflow as every driver in this package does.
        """
        if self._bound_workflow is workflow and self.stage_order is not None:
            return
        order = tuple(workflow.chain)
        if order != self.stage_order:
            self.stage_order = order
            self._node_index = None
        self._bound_workflow = workflow

    def begin_request(self, request: WorkflowRequest) -> None:
        """Hook invoked when a request starts (before any sizing)."""

    def size_for_node(
        self,
        node: str,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        """Allocation for ``node`` given time already spent.

        The base implementation dispatches to whichever legacy method the
        subclass overrides; node-keyed policies override this directly.
        """
        cls = type(self)
        if cls.size_for_function is not SizingPolicy.size_for_function:
            return self.size_for_function(node, request, elapsed_ms)
        if cls.size_for_stage is not SizingPolicy.size_for_stage:
            return self.size_for_stage(
                self._stage_index(node), request, elapsed_ms
            )
        raise PolicyError(
            f"{self.name}: policy overrides none of size_for_node / "
            f"size_for_stage / size_for_function"
        )

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`size_for_node` over aligned request/elapsed arrays.

        The base implementation loops over the scalar method, so any
        third-party policy automatically works under the batched executors;
        the registry policies override this with native vector lookups.
        Elements are bit-identical to the scalar calls by construction.
        """
        elapsed = np.asarray(elapsed_ms, dtype=np.float64).tolist()
        return np.fromiter(
            (
                self.size_for_node(node, request, el)
                for request, el in zip(requests, elapsed)
            ),
            dtype=np.int64,
            count=len(requests),
        )

    def size_for_stage(
        self,
        stage_index: int,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        """Chain-API compatibility shim: stage ``i`` is ``stage_order[i]``."""
        order = self._require_order()
        if not 0 <= stage_index < len(order):
            raise PolicyError(
                f"{self.name}: stage {stage_index} outside order of {len(order)}"
            )
        return self.size_for_node(order[stage_index], request, elapsed_ms)

    def size_for_function(
        self,
        function: str,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        """DAG-API compatibility alias of :meth:`size_for_node`."""
        return self.size_for_node(function, request, elapsed_ms)

    def end_request(self, request: WorkflowRequest) -> None:
        """Hook invoked after the last node completes."""

    # ------------------------------------------------------------------
    def _require_order(self) -> tuple[str, ...]:
        if self.stage_order is None:
            raise PolicyError(
                f"{self.name}: no stage order bound; call bind(workflow) or "
                f"set stage_order before stage-indexed sizing"
            )
        return self.stage_order

    def _stage_index(self, node: str) -> int:
        order = self._require_order()
        if self._node_index is None:
            self._node_index = {n: i for i, n in enumerate(order)}
        try:
            return self._node_index[node]
        except KeyError:
            raise PolicyError(
                f"{self.name}: node {node!r} not in stage order {list(order)}; "
                f"stage-indexed policies cover only the chain (critical path) "
                f"— override size_for_node to serve branching workflows"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
