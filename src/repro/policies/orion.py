"""ORION-like distribution-aware early binding (Mahgoub et al., OSDI'22).

ORION's key idea (as summarised in the paper's related work): model each
function's latency as a *distribution* and size the DAG so that the
end-to-end P99 of the *convolution* meets the SLO, rather than summing
per-function P99s. Because the sum of independent stage latencies
concentrates, the convolution's P99 is below the sum of P99s — ORION
therefore provisions less than GrandSLAM+ while still meeting the SLO,
which is exactly the ordering Table I reports.

Implementation: each function's latency distribution at size ``k`` is
reconstructed from the profiled percentile table by inverse-CDF
interpolation over common uniform draws (common random numbers keep the
estimate monotone in ``k``), and a greedy coordinate descent shrinks the
allocation one step at a time while the Monte-Carlo end-to-end P99 stays
within the SLO.
"""

from __future__ import annotations

import numpy as np

from ..errors import PolicyError
from ..profiling.profiles import LatencyProfile, ProfileSet
from ..rng import derive_rng
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from .early_binding import FixedPlanPolicy

__all__ = ["OrionPolicy"]


def _inverse_cdf_samples(
    profile: LatencyProfile,
    k_index: int,
    uniforms: np.ndarray,
    concurrency: int,
) -> np.ndarray:
    """Latency draws at size index ``k_index`` via percentile interpolation."""
    plane = profile.plane(concurrency)  # (P, K)
    p_grid = profile.percentiles.as_array()
    return np.interp(uniforms, p_grid, plane[:, k_index])


class OrionPolicy(FixedPlanPolicy):
    """Distribution-convolution early binding."""

    def __init__(
        self,
        workflow: Workflow,
        profiles: ProfileSet,
        concurrency: int = 1,
        slo_ms: Milliseconds | None = None,
        mc_samples: int = 4000,
        seed: int = 7,
        target_percentile: float | None = None,
        safety_margin: float = 0.10,
    ) -> None:
        if not 0.0 <= safety_margin < 1.0:
            raise PolicyError(f"safety margin must be in [0, 1): {safety_margin}")
        slo = float(slo_ms if slo_ms is not None else workflow.slo_ms)
        # ORION sizes against a deflated SLO target. The real system keeps a
        # safety cushion because its distribution model is fitted offline and
        # must absorb bundling/placement effects it does not capture; without
        # the cushion the Monte-Carlo convolution tracks the true P99 so
        # closely that estimation noise alone produces >1% violations.
        target = slo * (1.0 - safety_margin)
        chain = workflow.chain
        chain_profiles = profiles.for_chain(chain)
        limits = profiles.limits
        anchor = (
            target_percentile
            if target_percentile is not None
            else profiles.percentiles.anchor
        )
        rng = derive_rng(seed, "orion", workflow.name)
        # Common uniforms per stage: one latency sample matrix per (stage, k).
        uniforms = [
            rng.uniform(
                profiles.percentiles.percentiles[0],
                profiles.percentiles.percentiles[-1],
                size=mc_samples,
            )
            for _ in chain
        ]
        num_k = limits.num_options
        # samples[i][ki] -> vector of latencies for stage i at size index ki
        samples = [
            np.stack(
                [
                    _inverse_cdf_samples(prof, ki, uniforms[i], concurrency)
                    for ki in range(num_k)
                ]
            )
            for i, prof in enumerate(chain_profiles)
        ]

        k_idx = [num_k - 1] * len(chain)  # start from Kmax everywhere

        def e2e_p99(indices: list[int]) -> float:
            total = np.zeros(mc_samples)
            for i, ki in enumerate(indices):
                total += samples[i][ki]
            return float(np.percentile(total, anchor))

        if e2e_p99(k_idx) > target:
            if e2e_p99(k_idx) > slo:
                raise PolicyError(
                    f"ORION: SLO {slo} ms infeasible even at Kmax "
                    f"(E2E P{anchor:g} = {e2e_p99(k_idx):.0f} ms)"
                )
            # Kmax fits the SLO but not the cushioned target: deploy Kmax.
            target = slo

        # Greedy shrink: repeatedly take the single-stage downsize that keeps
        # the convolved P99 within the SLO, preferring the largest millicore
        # saving (all steps save `limits.step`, so any feasible stage works;
        # pick the one leaving the most SLO headroom).
        improved = True
        while improved:
            improved = False
            best_stage = -1
            best_headroom = -np.inf
            for i in range(len(chain)):
                if k_idx[i] == 0:
                    continue
                trial = list(k_idx)
                trial[i] -= 1
                p99 = e2e_p99(trial)
                if p99 <= target and target - p99 > best_headroom:
                    best_headroom = target - p99
                    best_stage = i
            if best_stage >= 0:
                k_idx[best_stage] -= 1
                improved = True

        plan = [int(limits.grid()[ki]) for ki in k_idx]
        super().__init__("ORION", plan)
        self.stage_order = tuple(workflow.chain)
        self.e2e_p99_ms = e2e_p99(k_idx)
        self.slo_ms = slo
