"""Early-binding baselines: GrandSLAM, GrandSLAM+ and worst-case P99.

All early-binding policies fix function sizes at deployment time from the
anchor-percentile (P99) profiles and never change them (paper §II-A):

* :class:`GrandSLAMPolicy` — one *identical* size for every function (the
  paper's description of GrandSLAM [41]): the smallest uniform ``k`` with
  ``sum_i L_i(P99, k) <= SLO``.
* :class:`GrandSLAMPlusPolicy` — GrandSLAM "enhanced by removing the
  constraint of identical sizes": per-function sizes minimising total
  millicores subject to the same P99-sum constraint (solved exactly with the
  suffix DP).
* :class:`WorstCasePolicy` — every function at ``Kmax``; the most
  conservative plan and an upper bound for sanity checks.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import PolicyError
from ..profiling.profiles import ProfileSet
from ..synthesis.dp import ChainDP
from ..types import Millicores, Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .base import SizingPolicy

__all__ = ["FixedPlanPolicy", "GrandSLAMPolicy", "GrandSLAMPlusPolicy", "WorstCasePolicy"]


class FixedPlanPolicy(SizingPolicy):
    """Base for early binding: a fixed per-stage allocation vector."""

    late_binding = False

    def __init__(self, name: str, plan: _t.Sequence[Millicores]) -> None:
        if not plan:
            raise PolicyError("plan may not be empty")
        if any(k <= 0 for k in plan):
            raise PolicyError(f"plan sizes must be positive: {plan}")
        self.name = name
        self.plan = [int(k) for k in plan]

    def size_for_stage(
        self,
        stage_index: int,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        if not 0 <= stage_index < len(self.plan):
            raise PolicyError(
                f"{self.name}: stage {stage_index} outside plan of {len(self.plan)}"
            )
        return self.plan[stage_index]

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: np.ndarray,
    ) -> np.ndarray:
        stage_index = self._stage_index(node)
        if not 0 <= stage_index < len(self.plan):
            raise PolicyError(
                f"{self.name}: stage {stage_index} outside plan of {len(self.plan)}"
            )
        return np.full(len(requests), self.plan[stage_index], dtype=np.int64)

    @property
    def total_millicores(self) -> int:
        """Sum of the fixed allocation (the policy's constant consumption)."""
        return sum(self.plan)


class WorstCasePolicy(FixedPlanPolicy):
    """Everything at Kmax — the ultra-conservative upper bound."""

    def __init__(self, workflow: Workflow) -> None:
        super().__init__(
            "WorstCase", [workflow.limits.kmax] * workflow.num_functions
        )
        self.stage_order = tuple(workflow.chain)
        self._kmax = int(workflow.limits.kmax)

    def size_for_node(
        self,
        node: str,
        request: WorkflowRequest,
        elapsed_ms: Milliseconds,
    ) -> Millicores:
        # Kmax regardless of the node, so the upper bound also serves
        # off-critical-path branches of DAG workflows.
        return self._kmax

    def sizes_for_node(
        self,
        node: str,
        requests: _t.Sequence[WorkflowRequest],
        elapsed_ms: np.ndarray,
    ) -> np.ndarray:
        return np.full(len(requests), self._kmax, dtype=np.int64)


class GrandSLAMPolicy(FixedPlanPolicy):
    """Identical sizes: smallest uniform k with the P99 sum within the SLO."""

    def __init__(
        self,
        workflow: Workflow,
        profiles: ProfileSet,
        concurrency: int = 1,
        slo_ms: Milliseconds | None = None,
    ) -> None:
        slo = float(slo_ms if slo_ms is not None else workflow.slo_ms)
        chain_profiles = profiles.for_chain(workflow.chain)
        anchor = profiles.percentiles.anchor
        k_grid = profiles.limits.grid()
        totals = np.sum(
            [prof.latency_row(anchor, concurrency) for prof in chain_profiles],
            axis=0,
        )
        feasible = np.flatnonzero(totals <= slo)
        if feasible.size == 0:
            raise PolicyError(
                f"GrandSLAM: no uniform size meets SLO {slo} ms "
                f"(best {float(totals.min()):.0f} ms at Kmax)"
            )
        k = int(k_grid[feasible[0]])
        super().__init__("GrandSLAM", [k] * len(chain_profiles))
        self.stage_order = tuple(workflow.chain)


class GrandSLAMPlusPolicy(FixedPlanPolicy):
    """Per-function sizes minimising total millicores under the P99 sum."""

    def __init__(
        self,
        workflow: Workflow,
        profiles: ProfileSet,
        concurrency: int = 1,
        slo_ms: Milliseconds | None = None,
    ) -> None:
        slo = int(float(slo_ms if slo_ms is not None else workflow.slo_ms))
        chain_profiles = profiles.for_chain(workflow.chain)
        dp = ChainDP(chain_profiles, slo, concurrency)
        plan = dp.allocation(0, slo)
        if plan is None:
            raise PolicyError(
                f"GrandSLAM+: no allocation meets SLO {slo} ms even at Kmax"
            )
        super().__init__("GrandSLAM+", plan)
        self.stage_order = tuple(workflow.chain)
