"""Sizing policies: early-binding baselines, ORION, the Janus family, the
clairvoyant Optimal oracle (paper §V-A), and the shared policy registry."""

from .base import SizingPolicy
from .dag import (
    DagFixedPolicy,
    DagGrandSLAMPolicy,
    DagJanusPolicy,
    DagSizingPolicy,
)
from .early_binding import (
    FixedPlanPolicy,
    GrandSLAMPlusPolicy,
    GrandSLAMPolicy,
    WorstCasePolicy,
)
from .janus import JanusPolicy, janus, janus_minus, janus_plus
from .oracle import OraclePolicy
from .orion import OrionPolicy
from .registry import DEFAULT_SUITE, POLICIES, PolicyBuilder, PolicyRegistry

__all__ = [
    "SizingPolicy",
    "PolicyRegistry",
    "PolicyBuilder",
    "POLICIES",
    "DEFAULT_SUITE",
    "DagSizingPolicy",
    "DagFixedPolicy",
    "DagGrandSLAMPolicy",
    "DagJanusPolicy",
    "FixedPlanPolicy",
    "WorstCasePolicy",
    "GrandSLAMPolicy",
    "GrandSLAMPlusPolicy",
    "OrionPolicy",
    "JanusPolicy",
    "janus",
    "janus_minus",
    "janus_plus",
    "OraclePolicy",
]
