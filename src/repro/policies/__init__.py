"""Sizing policies: early-binding baselines, ORION, the Janus family and
the clairvoyant Optimal oracle (paper §V-A)."""

from .base import SizingPolicy
from .dag import (
    DagFixedPolicy,
    DagGrandSLAMPolicy,
    DagJanusPolicy,
    DagSizingPolicy,
)
from .early_binding import (
    FixedPlanPolicy,
    GrandSLAMPlusPolicy,
    GrandSLAMPolicy,
    WorstCasePolicy,
)
from .janus import JanusPolicy, janus, janus_minus, janus_plus
from .oracle import OraclePolicy
from .orion import OrionPolicy

__all__ = [
    "SizingPolicy",
    "DagSizingPolicy",
    "DagFixedPolicy",
    "DagGrandSLAMPolicy",
    "DagJanusPolicy",
    "FixedPlanPolicy",
    "WorstCasePolicy",
    "GrandSLAMPolicy",
    "GrandSLAMPlusPolicy",
    "OrionPolicy",
    "JanusPolicy",
    "janus",
    "janus_minus",
    "janus_plus",
    "OraclePolicy",
]
