"""Function pods (instances)."""

from __future__ import annotations

import enum
import typing as _t

from ..errors import ClusterError
from ..types import Millicores

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .vm import VirtualMachine

__all__ = ["PodState", "Pod"]


class PodState(enum.Enum):
    """Lifecycle of a function instance."""

    COLD = "cold"  # created, container still starting
    WARM = "warm"  # idle, ready to serve
    BUSY = "busy"  # executing an invocation
    DEAD = "dead"  # reclaimed


class Pod:
    """One function instance pinned to a VM with a millicore reservation."""

    _next_id = 0

    def __init__(self, function: str, size: Millicores, vm: "VirtualMachine") -> None:
        if size <= 0:
            raise ClusterError(f"pod size must be > 0, got {size}")
        self.pod_id = Pod._next_id
        Pod._next_id += 1
        self.function = str(function)
        self._size = int(size)
        self.vm = vm
        self.state = PodState.COLD
        self.invocations_served = 0

    @property
    def size(self) -> Millicores:
        """Current millicore reservation."""
        return self._size

    @property
    def busy(self) -> bool:
        return self.state is PodState.BUSY

    @property
    def alive(self) -> bool:
        return self.state is not PodState.DEAD

    # -- transitions ---------------------------------------------------------
    def warm_up(self) -> None:
        """COLD -> WARM (container finished booting)."""
        self._transition(PodState.COLD, PodState.WARM)

    def start_invocation(self) -> None:
        """WARM -> BUSY."""
        self._transition(PodState.WARM, PodState.BUSY)

    def finish_invocation(self) -> None:
        """BUSY -> WARM."""
        self._transition(PodState.BUSY, PodState.WARM)
        self.invocations_served += 1

    def kill(self) -> None:
        """Any live state -> DEAD (idle reclamation / scale-in)."""
        if self.state is PodState.DEAD:
            raise ClusterError(f"pod {self.pod_id} already dead")
        if self.state is PodState.BUSY:
            raise ClusterError(f"cannot kill busy pod {self.pod_id}")
        self.state = PodState.DEAD

    def preempt(self) -> None:
        """BUSY -> DEAD: the hosting VM failed mid-invocation.

        The only sanctioned way to lose a busy pod — ``kill`` refuses it so
        scale-in can never silently drop in-flight work.
        """
        self._transition(PodState.BUSY, PodState.DEAD)

    def _transition(self, expected: PodState, target: PodState) -> None:
        if self.state is not expected:
            raise ClusterError(
                f"pod {self.pod_id} ({self.function}): cannot go "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pod(id={self.pod_id}, fn={self.function}, size={self.size}, "
            f"state={self.state.value}, vm={self.vm.vm_id})"
        )
