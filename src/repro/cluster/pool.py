"""Warm-pod pool manager (Fission PoolManager-style, paper §V-A).

The paper deploys functions with Fission's PoolManager "due to its excellent
performance against cold starts": a pool of pre-booted generic pods is
specialised on demand, so most invocations find a warm instance. We model
this as a per-function warm pool with configurable pre-provisioned size;
when the pool is empty a new pod is created and pays the function's cold
start before serving.

Keep-alive (paper §VII second future-work item — the interplay between
runtime adaptation and function caching): parked pods expire after
``keepalive_ms`` of idleness, trading cold-start probability against the
idle millicore-time their reservations waste. The pool accounts that idle
cost explicitly (``idle_millicore_ms``) so caching strategies can be
compared quantitatively.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import ClusterError
from ..functions.model import FunctionModel
from ..sim.engine import Simulator
from ..types import Millicores
from .pod import Pod, PodState
from .vm import VirtualMachine

__all__ = ["PoolManager"]


@dataclass
class _Parked:
    """A warm pod sitting in the pool since ``parked_at``."""

    pod: Pod
    parked_at: float


class PoolManager:
    """Creates, warms, parks and reclaims function pods across VMs."""

    def __init__(
        self,
        sim: Simulator,
        vms: _t.Sequence[VirtualMachine],
        functions: _t.Mapping[str, FunctionModel],
        warm_pool_size: int = 1,
        colocate_same_function: bool = True,
        keepalive_ms: float | None = None,
    ) -> None:
        if not vms:
            raise ClusterError("pool manager needs at least one VM")
        if warm_pool_size < 0:
            raise ClusterError(f"warm pool size must be >= 0: {warm_pool_size}")
        if keepalive_ms is not None and keepalive_ms < 0:
            raise ClusterError(f"keepalive must be >= 0: {keepalive_ms}")
        self.sim = sim
        self.vms = list(vms)
        self.functions = dict(functions)
        self.warm_pool_size = int(warm_pool_size)
        self.colocate_same_function = bool(colocate_same_function)
        self.keepalive_ms = keepalive_ms
        self._warm: dict[str, list[_Parked]] = {name: [] for name in functions}
        self.cold_starts = 0
        self.warm_hits = 0
        self.reclaimed = 0
        self.expired = 0
        self.throttled = 0
        #: Idle millicore-milliseconds spent by parked reservations.
        self.idle_millicore_ms = 0.0
        #: Poll interval while waiting as a pending pod on a full cluster.
        self.retry_interval_ms = 10.0
        #: Installed by a :class:`~repro.cluster.faults.FaultInjector` so
        #: boot-interruption evictions land in the run's fault counters.
        self.fault_stats = None

    # -- placement policy -------------------------------------------------
    def _pick_vm(self, function: str, size: Millicores) -> VirtualMachine | None:
        """Choose a VM for a new pod, or ``None`` when nothing fits.

        Mirrors production packing (§II-B): prefer VMs already hosting the
        same function (tenant affinity), then best-fit by free capacity.
        """
        candidates = [vm for vm in self.vms if vm.fits(size)]
        if not candidates:
            return None
        if self.colocate_same_function:
            same = [
                vm for vm in candidates
                if vm.colocated_count(function, busy_only=False) > 0
            ]
            if same:
                return min(same, key=lambda vm: vm.free)
        return min(candidates, key=lambda vm: vm.free)

    # -- parked-pod lifecycle ------------------------------------------------
    def _unpark(self, function: str, idx: int) -> Pod:
        """Remove a parked pod, accounting its idle reservation time."""
        entry = self._warm[function].pop(idx)
        self.idle_millicore_ms += entry.pod.size * (
            self.sim.now - entry.parked_at
        )
        return entry.pod

    def _purge_expired(self, function: str) -> None:
        """Kill parked pods idle beyond the keep-alive TTL."""
        if self.keepalive_ms is None:
            return
        parked = self._warm[function]
        for idx in range(len(parked) - 1, -1, -1):
            if self.sim.now - parked[idx].parked_at > self.keepalive_ms:
                pod = self._unpark(function, idx)
                pod.vm.evict(pod)
                pod.kill()
                self.expired += 1

    def _reclaim_idle(self, needed: Millicores) -> None:
        """Evict parked warm pods until some VM can fit ``needed``.

        Idle-pod reclamation under capacity pressure — what a kubelet does
        before refusing a pending pod.
        """
        for function in self._warm:
            while self._warm[function]:
                if any(vm.fits(needed) for vm in self.vms):
                    return
                pod = self._unpark(function, 0)
                pod.vm.evict(pod)
                pod.kill()
                self.reclaimed += 1

    # -- pod acquisition -----------------------------------------------------
    def acquire(self, function: str, size: Millicores):
        """Process: obtain a ready pod of ``function`` resized to ``size``.

        Yields simulation events; returns a WARM pod. Warm-pool hits resize
        the parked pod in place; otherwise a cold start is paid.
        """
        if function not in self.functions:
            raise ClusterError(f"unknown function {function!r}")
        self._purge_expired(function)
        warm = self._warm[function]
        # A parked pod is only reusable when its VM has headroom for the
        # requested size (upsizing may exceed the VM under multi-tenant
        # pressure); scan newest-first for one that fits.
        for idx in range(len(warm) - 1, -1, -1):
            pod = warm[idx].pod
            if pod.vm.up and pod.vm.free + pod.size >= size:
                self._unpark(function, idx)
                self.warm_hits += 1
                self._resize(pod, size)
                return pod
        # Cold path: boot a fresh pod. Under capacity pressure, reclaim idle
        # pods first, then wait for running invocations to release cores
        # (the pod stays "pending", as on a saturated Kubernetes node). A VM
        # failing mid-boot loses the boot: evict and start over elsewhere.
        self.cold_starts += 1
        model = self.functions[function]
        while True:
            vm = self._pick_vm(function, size)
            if vm is None:
                self._reclaim_idle(size)
                vm = self._pick_vm(function, size)
            while vm is None:
                self.throttled += 1
                yield self.sim.timeout(self.retry_interval_ms)
                self._reclaim_idle(size)
                vm = self._pick_vm(function, size)
            pod = Pod(function, size, vm)
            vm.place(pod)
            yield self.sim.timeout(model.cold_start_ms)
            if not vm.up:
                vm.evict(pod)
                pod.kill()
                if self.fault_stats is not None:
                    self.fault_stats.evictions += 1
                continue
            pod.warm_up()
            return pod

    def _resize(self, pod: Pod, size: Millicores) -> None:
        if pod.size != size:
            pod.vm.resize_pod(pod, size)

    def release(self, pod: Pod) -> None:
        """Return a pod after an invocation; park or reclaim it."""
        if pod.state is not PodState.WARM:
            raise ClusterError(
                f"released pod {pod.pod_id} must be WARM, is {pod.state.value}"
            )
        if not pod.vm.up:
            # The VM failed in the same instant the invocation finished
            # (the finish won the race); never park onto a down VM.
            pod.vm.evict(pod)
            pod.kill()
            if self.fault_stats is not None:
                self.fault_stats.evictions += 1
            return
        self._purge_expired(pod.function)
        warm = self._warm[pod.function]
        keepalive_disabled = self.keepalive_ms is not None and self.keepalive_ms == 0
        if len(warm) < self.warm_pool_size and not keepalive_disabled:
            warm.append(_Parked(pod=pod, parked_at=self.sim.now))
        else:
            pod.vm.evict(pod)
            pod.kill()

    # -- fault handling ------------------------------------------------------
    def evict_parked_on(self, vm: VirtualMachine) -> int:
        """Kill every parked pod on a failed ``vm``; returns the count.

        Called by the fault injector when a VM goes down — parked warm
        state on that VM is lost (later acquisitions will cold-start
        elsewhere), which is exactly the cold-start-storm mechanism a real
        preemption triggers.
        """
        evicted = 0
        for function in self._warm:
            parked = self._warm[function]
            for idx in range(len(parked) - 1, -1, -1):
                if parked[idx].pod.vm is vm:
                    pod = self._unpark(function, idx)
                    vm.evict(pod)
                    pod.kill()
                    evicted += 1
        return evicted

    # -- introspection ------------------------------------------------------
    def warm_count(self, function: str) -> int:
        """Parked warm pods for ``function``."""
        return len(self._warm.get(function, []))

    @property
    def cold_start_rate(self) -> float:
        """Fraction of acquisitions that paid a cold start."""
        total = self.cold_starts + self.warm_hits
        return self.cold_starts / total if total else 0.0
