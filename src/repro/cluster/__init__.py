"""Serverless platform substrate: VMs, pods, pools, autoscaling,
interference and the DES-backed :class:`ServerlessPlatform` facade."""

from .accounting import ClusterAccounting
from .autoscaler import HorizontalAutoscaler
from .faults import (
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultStats,
    compile_fault_schedule,
    parse_fault,
)
from .interference import DEFAULT_COEFFICIENTS, InterferenceModel
from .multi import MultiTenantPlatform, TenantJob
from .platform import ClusterConfig, ServerlessPlatform, cluster_executor
from .pod import Pod, PodState
from .pool import PoolManager
from .vm import VirtualMachine

__all__ = [
    "VirtualMachine",
    "Pod",
    "PodState",
    "PoolManager",
    "HorizontalAutoscaler",
    "InterferenceModel",
    "DEFAULT_COEFFICIENTS",
    "ClusterAccounting",
    "ClusterConfig",
    "MultiTenantPlatform",
    "TenantJob",
    "ServerlessPlatform",
    "cluster_executor",
    "CLUSTER_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultEvent",
    "FaultStats",
    "FaultInjector",
    "parse_fault",
    "compile_fault_schedule",
]
