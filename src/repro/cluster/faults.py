"""Fault injection: deterministic adverse-dynamics schedules for the DES
cluster (paper Fig. 7 resilience, §II-B interference).

A :class:`FaultSpec` is a declarative, seed-free description of one adverse
dynamic — VM preemptions, a permanent VM crash, correlated stragglers,
cross-function contention, or a flash-crowd arrival storm. Cluster-side
kinds compile into an explicit, fully sorted schedule of primitive
:class:`FaultEvent` records (:func:`compile_fault_schedule`) from a derived
seed, so the same spec + seed + fleet size always yields the bit-identical
schedule regardless of which sweep backend or process evaluates the cell —
the property the chaos tests pin.

The :class:`FaultInjector` drives a compiled schedule inside a simulation:
it downs/recovers VMs (evicting parked pods, arming per-VM failure events
the serving core races against mid-invocation) and applies transient
straggler slowdowns. All bookkeeping lands in :class:`FaultStats`, which the
platform surfaces as per-policy result extras.

``storm`` is the one arrival-side kind: it does not touch the cluster at
all but rewrites the cell's arrival process into the ``"storm"``
burst-on-diurnal kind (see :func:`repro.scenarios.matrix.storm_arrival`),
so it works on analytic cells too.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

from ..errors import ClusterError
from ..rng import make_rng
from ..sim.engine import Simulator
from ..sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import PoolManager
    from .vm import VirtualMachine

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultEvent",
    "FaultStats",
    "FaultInjector",
    "RegionOutage",
    "parse_fault",
    "compile_fault_schedule",
    "compile_region_failover",
]

#: Kinds realised by the DES cluster platform (an injector is installed).
CLUSTER_FAULT_KINDS = ("preempt", "crash", "straggler", "contention")
#: Kinds realised by the multi-region fleet layer (``repro.fleet``): the
#: fault takes a whole region down and routing drains its traffic.
FLEET_FAULT_KINDS = ("region-failover",)
#: Every kind a ``faults=`` axis entry may name; ``storm`` transforms the
#: cell's arrival process instead of touching the cluster, and the fleet
#: kinds require a fleet on the cell.
FAULT_KINDS = CLUSTER_FAULT_KINDS + ("storm",) + FLEET_FAULT_KINDS

#: Backoff a preempted invocation waits before re-acquiring a pod (ms).
RETRY_BACKOFF_MS = 50.0


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault shape — picklable, hashable, seed-free.

    Like :class:`~repro.traces.workload.ArrivalSpec`, the spec carries only
    the *shape*; all randomness comes from the seed handed to
    :func:`compile_fault_schedule`, so a cell's fault schedule replays
    bit-identically under its derived seed. Only the fields the kind
    consumes are validated (and shown in :attr:`label`):

    ``preempt``
        Transient VM preemptions as a Poisson process of
        ``rate_per_min`` across the fleet; each victim is down for
        ``recovery_ms`` (busy pods are killed mid-invocation and the
        serving core retries after a backoff).
    ``crash``
        One VM permanently fails at ``at_ms``.
    ``straggler``
        Correlated slow episodes: a fixed ``fraction`` of the fleet runs
        ``slowdown`` x slower during episodes of ``duration_ms`` arriving
        with mean spacing ``interval_ms`` (all affected VMs slow
        *together* — the correlated-straggler shape).
    ``contention``
        Cross-function dominant-resource contention: busy pods of *other*
        functions sharing a VM contribute ``scale`` of a same-function
        neighbour to the interference count (see
        :meth:`~repro.cluster.interference.InterferenceModel.cross_slowdown`).
    ``storm``
        Flash crowd: the cell's arrival process gains a window around the
        diurnal peak where the rate is multiplied by ``multiplier``
        (``window_fraction`` of the period wide).
    ``region-failover``
        One whole fleet region goes dark for ``recovery_ms`` starting at a
        seed-derived time; the routing policy drains its traffic to the
        survivors (see :func:`compile_region_failover` and
        :mod:`repro.fleet`). Requires a fleet on the cell.
    """

    kind: str
    #: preempt: fleet-wide preemption rate and per-event downtime.
    rate_per_min: float = 2.0
    recovery_ms: float = 5000.0
    #: crash: permanent failure time.
    at_ms: float = 5000.0
    #: storm: rate multiplier and window width (fraction of the period).
    multiplier: float = 6.0
    window_fraction: float = 0.15
    #: straggler: affected fleet fraction, slowdown and episode shape.
    fraction: float = 0.25
    slowdown: float = 3.0
    duration_ms: float = 5000.0
    interval_ms: float = 20000.0
    #: contention: weight of one busy other-function neighbour relative to
    #: a same-function one.
    scale: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ClusterError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.kind == "preempt":
            if self.rate_per_min <= 0:
                raise ClusterError(
                    f"preemption rate must be > 0/min, got {self.rate_per_min}"
                )
            if self.recovery_ms <= 0:
                raise ClusterError(
                    f"recovery must be > 0 ms, got {self.recovery_ms}"
                )
        elif self.kind == "crash":
            if self.at_ms < 0:
                raise ClusterError(f"crash time must be >= 0, got {self.at_ms}")
        elif self.kind == "storm":
            if self.multiplier <= 1.0:
                raise ClusterError(
                    f"storm multiplier must be > 1, got {self.multiplier}"
                )
            if not 0.0 < self.window_fraction <= 1.0:
                raise ClusterError(
                    f"storm window fraction must be in (0, 1], got "
                    f"{self.window_fraction}"
                )
        elif self.kind == "straggler":
            if not 0.0 < self.fraction <= 1.0:
                raise ClusterError(
                    f"straggler fraction must be in (0, 1], got {self.fraction}"
                )
            if self.slowdown <= 1.0:
                raise ClusterError(
                    f"straggler slowdown must be > 1, got {self.slowdown}"
                )
            if self.duration_ms <= 0 or self.interval_ms <= 0:
                raise ClusterError(
                    f"straggler episodes need duration and interval > 0 ms, "
                    f"got {self.duration_ms}/{self.interval_ms}"
                )
        elif self.kind == "contention":
            if self.scale < 0:
                raise ClusterError(
                    f"contention scale must be >= 0, got {self.scale}"
                )
        elif self.kind == "region-failover":
            if self.recovery_ms <= 0:
                raise ClusterError(
                    f"region outage must last > 0 ms, got {self.recovery_ms}"
                )

    @property
    def label(self) -> str:
        """Stable identifier — keys fault-seed derivation and cell IDs."""
        if self.kind == "preempt":
            return (
                f"preempt@{self.rate_per_min:g}/min"
                f"~{self.recovery_ms:g}ms"
            )
        if self.kind == "crash":
            return f"crash@{self.at_ms:g}ms"
        if self.kind == "storm":
            return f"storm@x{self.multiplier:g}~{self.window_fraction:g}"
        if self.kind == "straggler":
            return (
                f"straggler@{self.fraction:g}x{self.slowdown:g}"
                f"~{self.duration_ms:g}/{self.interval_ms:g}ms"
            )
        if self.kind == "region-failover":
            return f"region-failover@{self.recovery_ms:g}ms"
        return f"contention@{self.scale:g}"


def parse_fault(text: str) -> FaultSpec:
    """Parse a CLI fault token into a :class:`FaultSpec`.

    Grammar: ``preempt@RATE[:RECOVERY_MS]`` (preemptions/min),
    ``crash@AT_MS``, ``storm@MULT[:WINDOW_FRACTION]``,
    ``straggler@FRACTION:SLOWDOWN``, ``contention[@SCALE]`` and
    ``region-failover[@OUTAGE_MS]``. Full control over every shape field
    is available through :class:`FaultSpec` directly.
    """
    kind, _, operand = text.partition("@")
    kind = kind.strip().lower()
    if kind not in FAULT_KINDS:
        raise ClusterError(
            f"unknown fault kind {kind!r} in {text!r}; known: {FAULT_KINDS}"
        )
    first, _, second = operand.partition(":")
    try:
        a = float(first) if first.strip() else None
        b = float(second) if second.strip() else None
    except ValueError:
        raise ClusterError(f"invalid fault operand in {text!r}")
    if kind == "preempt":
        fields: dict[str, float] = {}
        if a is not None:
            fields["rate_per_min"] = a
        if b is not None:
            fields["recovery_ms"] = b
        return FaultSpec(kind="preempt", **fields)
    if kind == "crash":
        return FaultSpec(kind="crash", **({} if a is None else {"at_ms": a}))
    if kind == "storm":
        fields = {}
        if a is not None:
            fields["multiplier"] = a
        if b is not None:
            fields["window_fraction"] = b
        return FaultSpec(kind="storm", **fields)
    if kind == "straggler":
        if a is None or b is None:
            raise ClusterError(
                f"straggler wants FRACTION:SLOWDOWN, got {text!r}"
            )
        return FaultSpec(kind="straggler", fraction=a, slowdown=b)
    if kind == "region-failover":
        return FaultSpec(
            kind="region-failover",
            **({} if a is None else {"recovery_ms": a}),
        )
    return FaultSpec(
        kind="contention", **({} if a is None else {"scale": a})
    )


@dataclass(frozen=True)
class FaultEvent:
    """One primitive scheduled action against one VM.

    ``action`` is ``"down"`` / ``"up"`` (preemptions and crashes; ``cause``
    distinguishes them) or ``"slow"`` / ``"unslow"`` (straggler episodes,
    ``slowdown`` carries the factor).
    """

    at_ms: float
    vm_id: int
    action: str
    cause: str
    slowdown: float = 1.0


def compile_fault_schedule(
    spec: FaultSpec, seed: int, n_vms: int, horizon_ms: float
) -> tuple[FaultEvent, ...]:
    """Compile ``spec`` into a sorted, deterministic event schedule.

    All randomness comes from ``make_rng(seed)`` consumed in a fixed
    order, so (spec, seed, n_vms, horizon) -> schedule is a pure function:
    every sweep backend and every process compiles the identical tuple.
    Kinds without scheduled events (``contention``, ``storm``) compile to
    an empty schedule.
    """
    if n_vms < 1:
        raise ClusterError(f"need >= 1 VM, got {n_vms}")
    if horizon_ms <= 0:
        raise ClusterError(f"horizon must be > 0 ms, got {horizon_ms}")
    rng = make_rng(seed)
    events: list[FaultEvent] = []
    if spec.kind == "crash":
        if spec.at_ms < horizon_ms:
            victim = int(rng.integers(n_vms))
            events.append(
                FaultEvent(float(spec.at_ms), victim, "down", "crash")
            )
    elif spec.kind == "preempt":
        # Poisson preemption times across the fleet; a candidate hitting a
        # VM that is still down is dropped at compile time so the injector
        # only ever applies clean down/up pairs.
        mean_gap_ms = 60_000.0 / spec.rate_per_min
        down_until = [0.0] * n_vms
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap_ms))
            if t >= horizon_ms:
                break
            victim = int(rng.integers(n_vms))
            if t < down_until[victim]:
                continue
            down_until[victim] = t + spec.recovery_ms
            events.append(FaultEvent(t, victim, "down", "preempt"))
            events.append(
                FaultEvent(t + spec.recovery_ms, victim, "up", "preempt")
            )
    elif spec.kind == "straggler":
        affected = sorted(
            int(v)
            for v in rng.permutation(n_vms)[
                : max(1, math.ceil(spec.fraction * n_vms))
            ]
        )
        # Episode start times, then overlapping episodes merged into
        # disjoint [start, end) intervals so slow/unslow pairs nest
        # cleanly.
        starts: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(spec.interval_ms))
            if t >= horizon_ms:
                break
            starts.append(t)
        intervals: list[tuple[float, float]] = []
        for start in starts:
            end = start + spec.duration_ms
            if intervals and start <= intervals[-1][1]:
                intervals[-1] = (intervals[-1][0], max(intervals[-1][1], end))
            else:
                intervals.append((start, end))
        for start, end in intervals:
            for vm_id in affected:
                events.append(
                    FaultEvent(start, vm_id, "slow", "straggler", spec.slowdown)
                )
                events.append(FaultEvent(end, vm_id, "unslow", "straggler"))
    events.sort(key=lambda ev: (ev.at_ms, ev.vm_id, ev.action))
    return tuple(events)


@dataclass(frozen=True)
class RegionOutage:
    """A compiled region-failover window: one region dark for one span."""

    region_index: int
    start_ms: float
    end_ms: float

    def down_at(self, t_ms: float) -> bool:
        """Whether the victim region is dark at ``t_ms``."""
        return self.start_ms <= t_ms < self.end_ms


def compile_region_failover(
    spec: FaultSpec, seed: int, n_regions: int, horizon_ms: float
) -> RegionOutage:
    """Compile a ``region-failover`` spec into its deterministic outage.

    Pure like :func:`compile_fault_schedule`: ``make_rng(seed)`` consumed
    in a fixed order (victim first, then the start time, uniform over the
    part of the horizon that keeps the whole outage inside it), so every
    backend and process derives the identical window.
    """
    if spec.kind != "region-failover":
        raise ClusterError(
            f"expected a region-failover spec, got kind {spec.kind!r}"
        )
    if n_regions < 2:
        raise ClusterError(
            f"region failover needs >= 2 regions to drain to, got {n_regions}"
        )
    if horizon_ms <= 0:
        raise ClusterError(f"horizon must be > 0 ms, got {horizon_ms}")
    rng = make_rng(seed)
    victim = int(rng.integers(n_regions))
    span = max(horizon_ms - spec.recovery_ms, 0.0)
    start = float(rng.uniform(0.0, span)) if span > 0 else 0.0
    return RegionOutage(victim, start, start + float(spec.recovery_ms))


@dataclass
class FaultStats:
    """Counters the platform surfaces as per-policy result extras."""

    preemptions: int = 0
    crashes: int = 0
    #: Pods killed as collateral: parked pods on a failed VM plus pods
    #: whose cold boot was interrupted by the VM going down.
    evictions: int = 0
    #: Invocations killed mid-flight and re-executed elsewhere.
    retries: int = 0
    #: Invocations dispatched onto a straggling (slowed) VM.
    straggler_exposure: int = 0

    def as_extras(self) -> dict[str, float]:
        """Deterministic extras payload (floats, for the report JSON)."""
        return {
            "preemptions": float(self.preemptions),
            "evictions": float(self.evictions),
            "retries": float(self.retries),
            "straggler_exposure": float(self.straggler_exposure),
        }


class FaultInjector:
    """Applies a compiled fault schedule to a live cluster simulation.

    One driver process walks the schedule: ``down`` marks the VM failed
    (placement refuses it), evicts its parked pods and fires the VM's
    armed failure event — the serving core races every in-flight
    invocation against that event and handles its own preemption. ``up``
    restores the VM; ``slow``/``unslow`` set the VM's transient slowdown.
    """

    def __init__(
        self,
        sim: Simulator,
        vms: _t.Sequence["VirtualMachine"],
        pool: "PoolManager",
        schedule: _t.Sequence[FaultEvent],
        stats: FaultStats,
    ) -> None:
        self.sim = sim
        self.vms = list(vms)
        self.pool = pool
        self.schedule = tuple(schedule)
        self.stats = stats
        self._has_failures = any(ev.action == "down" for ev in self.schedule)
        #: One armed (pending) failure event per VM, re-armed after firing.
        self._failure_events: dict[int, Event] = {
            vm.vm_id: Event(sim) for vm in self.vms
        }
        # The pool reports boot-interruption evictions into the same stats.
        pool.fault_stats = stats
        for ev in self.schedule:
            if ev.vm_id >= len(self.vms):
                raise ClusterError(
                    f"fault event targets VM {ev.vm_id} but the fleet has "
                    f"{len(self.vms)} VMs"
                )

    def start(self) -> None:
        """Launch the schedule driver (no-op for an empty schedule)."""
        if self.schedule:
            self.sim.process(self._driver())

    def watch(self, vm: "VirtualMachine") -> Event | None:
        """The armed failure event of ``vm``, or ``None`` when this
        schedule can never down a VM (stragglers/contention) — so the
        serving core only pays the race where preemption is possible."""
        if not self._has_failures:
            return None
        return self._failure_events[vm.vm_id]

    # -- schedule driver -----------------------------------------------------
    def _driver(self):
        for ev in self.schedule:
            delay = ev.at_ms - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._apply(ev)

    def _apply(self, ev: FaultEvent) -> None:
        vm = self.vms[ev.vm_id]
        if ev.action == "down":
            vm.up = False
            if ev.cause == "crash":
                self.stats.crashes += 1
            else:
                self.stats.preemptions += 1
            self.stats.evictions += self.pool.evict_parked_on(vm)
            # Fire the armed event (busy invocations racing on it preempt
            # themselves), then re-arm for the next failure of this VM.
            self._failure_events[vm.vm_id].succeed(value=ev.cause)
            self._failure_events[vm.vm_id] = Event(self.sim)
        elif ev.action == "up":
            vm.up = True
        elif ev.action == "slow":
            vm.slowdown = ev.slowdown
        else:  # unslow
            vm.slowdown = 1.0
