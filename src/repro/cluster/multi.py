"""Multi-tenant serving: several workflows sharing one cluster.

Paper §III-A: "In a multi-user scenario, the hints are managed separately
for each tenant and each workflow." This module runs multiple tenants'
workflows on one set of VMs. Function identities are namespaced per tenant
(``tenant:function``) so that warm pools and co-location interference stay
tenant-local — commercial platforms pack instances of the *same* tenant
together (§II-B), which is exactly what the pool's affinity placement then
reproduces.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, replace

from ..errors import ClusterError
from ..functions.model import FunctionModel, InvocationDynamics
from ..policies.base import SizingPolicy
from ..runtime.results import RunResult
from ..sim.engine import Simulator
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .accounting import ClusterAccounting
from .interference import InterferenceModel
from .platform import ClusterConfig
from .pool import PoolManager
from .vm import VirtualMachine

__all__ = ["TenantJob", "MultiTenantPlatform"]


@dataclass(frozen=True)
class TenantJob:
    """One tenant's serving job: a policy plus its request stream."""

    tenant: str
    policy: SizingPolicy
    requests: tuple[WorkflowRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ClusterError(f"tenant {self.tenant!r} has no requests")


class MultiTenantPlatform:
    """Shared-cluster execution of several tenants' workflows."""

    def __init__(
        self,
        workflows: _t.Mapping[str, Workflow],
        config: ClusterConfig | None = None,
        interference: InterferenceModel | None = None,
    ) -> None:
        if not workflows:
            raise ClusterError("at least one tenant workflow required")
        self.workflows = dict(workflows)
        self.config = config or ClusterConfig()
        self.sim = Simulator()
        self.vms = [
            VirtualMachine(i, self.config.vm_capacity_millicores)
            for i in range(self.config.n_vms)
        ]
        namespaced: dict[str, FunctionModel] = {}
        for tenant, workflow in self.workflows.items():
            for name, model in workflow.functions.items():
                namespaced[self._key(tenant, name)] = model
        self.pool = PoolManager(
            self.sim,
            self.vms,
            namespaced,
            warm_pool_size=self.config.warm_pool_size,
            colocate_same_function=self.config.colocate_same_function,
            keepalive_ms=self.config.keepalive_ms,
        )
        self.interference = interference or InterferenceModel()
        self.accounting = ClusterAccounting(self.sim, self.vms)
        self._outcomes: dict[str, list[RequestOutcome]] = {}

    @staticmethod
    def _key(tenant: str, function: str) -> str:
        return f"{tenant}:{function}"

    # ------------------------------------------------------------------
    def _serve(self, tenant: str, policy: SizingPolicy, request: WorkflowRequest):
        workflow = self.workflows[tenant]
        chain = workflow.chain
        limits = workflow.limits
        policy.bind(workflow)
        policy.begin_request(request)
        start_time = self.sim.now
        stages: list[StageRecord] = []
        for fname in chain:
            elapsed = self.sim.now - start_time
            size = limits.clamp(policy.size_for_node(fname, request, elapsed))
            model = workflow.model(fname)
            key = self._key(tenant, fname)
            stage_start = self.sim.now
            pod = yield from self.pool.acquire(key, size)
            cold_ms = self.sim.now - stage_start
            pod.start_invocation()
            self.accounting.snapshot()
            n_colo = max(1, pod.vm.colocated_count(key, busy_only=True))
            slowdown = self.interference.slowdown(model.dominant_resource, n_colo)
            dyn = request.dynamics_for(fname)
            dyn_q: InvocationDynamics = replace(
                dyn, interference=dyn.interference * slowdown
            )
            exec_ms = model.execution_time(size, dyn_q, request.concurrency)
            yield self.sim.timeout(exec_ms)
            pod.finish_invocation()
            self.pool.release(pod)
            self.accounting.snapshot()
            stages.append(
                StageRecord(
                    function=fname, size=size,
                    start_ms=stage_start, end_ms=self.sim.now,
                    cold_start_ms=cold_ms,
                )
            )
        policy.end_request(request)
        outcome = RequestOutcome(
            request_id=request.request_id,
            arrival_ms=start_time,
            slo_ms=request.slo_ms,
            stages=stages,
        )
        self._outcomes[tenant].append(outcome)
        return outcome

    def _submit_at(self, tenant: str, policy: SizingPolicy, request):
        delay = request.arrival_ms - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        outcome = yield self.sim.process(self._serve(tenant, policy, request))
        return outcome

    # -- public API -------------------------------------------------------
    def run(self, jobs: _t.Sequence[TenantJob]) -> dict[str, RunResult]:
        """Serve all tenants' streams concurrently on the shared cluster."""
        if not jobs:
            raise ClusterError("no tenant jobs submitted")
        tenants = [job.tenant for job in jobs]
        if len(set(tenants)) != len(tenants):
            raise ClusterError(f"duplicate tenants: {tenants}")
        unknown = [t for t in tenants if t not in self.workflows]
        if unknown:
            raise ClusterError(f"tenants without deployed workflows: {unknown}")
        self._outcomes = {job.tenant: [] for job in jobs}
        procs = []
        for job in jobs:
            for request in job.requests:
                procs.append(
                    self.sim.process(
                        self._submit_at(job.tenant, job.policy, request)
                    )
                )
        self.sim.run(until=self.sim.all_of(procs))
        for proc in procs:
            if proc.processed and not proc.ok:
                raise proc.value
        results: dict[str, RunResult] = {}
        for job in jobs:
            outcomes = sorted(
                self._outcomes[job.tenant], key=lambda o: o.request_id
            )
            results[job.tenant] = RunResult(
                policy_name=job.policy.name,
                outcomes=outcomes,
                extras={
                    "tenant": job.tenant,
                    "cold_start_rate": self.pool.cold_start_rate,
                    "mean_cluster_allocated": self.accounting.mean_allocated(),
                },
            )
        return results
