"""Multi-tenant serving: several workflows sharing one cluster.

Paper §III-A: "In a multi-user scenario, the hints are managed separately
for each tenant and each workflow." This module runs multiple tenants'
workflows on one set of VMs. Function identities are namespaced per tenant
(``tenant:function``) so that warm pools and co-location interference stay
tenant-local — commercial platforms pack instances of the *same* tenant
together (§II-B), which is exactly what the pool's affinity placement then
reproduces.

Per-request serving is *not* re-implemented here: each tenant's requests go
through the registered ``"cluster"`` executor's serving core
(:class:`~repro.cluster.platform._ServingPlatform`), with the pool keys
namespaced per tenant — so chain and full-DAG workflows behave identically
on the shared cluster and on a dedicated one, every run starts on fresh
simulator/pool/autoscaler/accounting state, and ``ClusterConfig.autoscale``
drives one shared horizontal autoscaler whose demand signal is fed per
tenant-namespaced function.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import ClusterError
from ..functions.model import FunctionModel
from ..policies.base import SizingPolicy
from ..runtime.results import RunResult
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, WorkflowRequest
from .faults import FaultSpec
from .interference import InterferenceModel
from .platform import ClusterConfig, _ServingPlatform

__all__ = ["TenantJob", "MultiTenantPlatform"]


@dataclass(frozen=True)
class TenantJob:
    """One tenant's serving job: a policy plus its request stream."""

    tenant: str
    policy: SizingPolicy
    requests: tuple[WorkflowRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ClusterError(f"tenant {self.tenant!r} has no requests")


class MultiTenantPlatform(_ServingPlatform):
    """Shared-cluster execution of several tenants' workflows."""

    def __init__(
        self,
        workflows: _t.Mapping[str, Workflow],
        config: ClusterConfig | None = None,
        interference: InterferenceModel | None = None,
        faults: FaultSpec | None = None,
        fault_seed: int = 0,
    ) -> None:
        if not workflows:
            raise ClusterError("at least one tenant workflow required")
        self.workflows = dict(workflows)
        self.config = config or ClusterConfig()
        self.interference = interference or InterferenceModel()
        self._init_faults(faults, fault_seed)
        self._namespaced: dict[str, FunctionModel] = {}
        for tenant, workflow in self.workflows.items():
            for name, model in workflow.functions.items():
                self._namespaced[self._key(tenant, name)] = model
        self._outcomes: dict[str, list[RequestOutcome]] = {}
        self._reset()

    def _reset(self) -> None:
        self._build_substrate(self._namespaced)

    @staticmethod
    def _key(tenant: str, function: str) -> str:
        return f"{tenant}:{function}"

    # ------------------------------------------------------------------
    def _serve(self, tenant: str, policy: SizingPolicy, request: WorkflowRequest):
        """Process: one tenant request through the shared serving core."""
        outcome = yield from self._serve_request(
            self.workflows[tenant], policy, request,
            pool_key=lambda fname: self._key(tenant, fname),
        )
        self._outcomes[tenant].append(outcome)
        return outcome

    # -- public API -------------------------------------------------------
    def run(self, jobs: _t.Sequence[TenantJob]) -> dict[str, RunResult]:
        """Serve all tenants' streams concurrently on the shared cluster."""
        if not jobs:
            raise ClusterError("no tenant jobs submitted")
        tenants = [job.tenant for job in jobs]
        if len(set(tenants)) != len(tenants):
            raise ClusterError(f"duplicate tenants: {tenants}")
        unknown = [t for t in tenants if t not in self.workflows]
        if unknown:
            raise ClusterError(f"tenants without deployed workflows: {unknown}")
        self._reset()
        self._start_faults(
            [request for job in jobs for request in job.requests]
        )
        self._outcomes = {job.tenant: [] for job in jobs}
        procs = []
        for job in jobs:
            for request in job.requests:
                procs.append(
                    self.sim.process(
                        self._hold_until_arrival(
                            request, self._serve(job.tenant, job.policy, request)
                        )
                    )
                )
        self._drain(procs)
        platform_extras = self._platform_extras()
        results: dict[str, RunResult] = {}
        for job in jobs:
            outcomes = sorted(
                self._outcomes[job.tenant], key=lambda o: o.request_id
            )
            results[job.tenant] = RunResult(
                policy_name=job.policy.name,
                outcomes=outcomes,
                extras={**platform_extras, "tenant": job.tenant},
            )
        return results
