"""Virtual machines: capacity, pod placement and co-location tracking."""

from __future__ import annotations

import typing as _t

from ..errors import ClusterError
from ..types import Millicores

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .pod import Pod

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """A VM hosting function pods, with millicore capacity accounting."""

    def __init__(self, vm_id: int, capacity_millicores: Millicores) -> None:
        if capacity_millicores <= 0:
            raise ClusterError(f"VM capacity must be > 0, got {capacity_millicores}")
        self.vm_id = int(vm_id)
        self.capacity = int(capacity_millicores)
        self._pods: dict[int, "Pod"] = {}
        #: Availability flag flipped by fault injection (preemption/crash).
        #: A down VM refuses placement; recovery restores it empty.
        self.up = True
        #: Transient execution slowdown (>= 1.0) while straggling.
        self.slowdown = 1.0

    # -- capacity ----------------------------------------------------------
    @property
    def allocated(self) -> Millicores:
        """Millicores currently reserved by resident pods."""
        return sum(p.size for p in self._pods.values())

    @property
    def free(self) -> Millicores:
        """Unreserved millicores."""
        return self.capacity - self.allocated

    def fits(self, size: Millicores) -> bool:
        """Whether a pod of ``size`` can be placed here (never on a down VM)."""
        return self.up and size <= self.free

    # -- placement ----------------------------------------------------------
    def place(self, pod: "Pod") -> None:
        """Admit a pod; raises when capacity would be exceeded."""
        if pod.pod_id in self._pods:
            raise ClusterError(f"pod {pod.pod_id} already on VM {self.vm_id}")
        if not self.fits(pod.size):
            raise ClusterError(
                f"VM {self.vm_id}: pod of {pod.size} mc exceeds free {self.free} mc"
            )
        self._pods[pod.pod_id] = pod

    def evict(self, pod: "Pod") -> None:
        """Remove a pod."""
        if pod.pod_id not in self._pods:
            raise ClusterError(f"pod {pod.pod_id} not on VM {self.vm_id}")
        del self._pods[pod.pod_id]

    def resize_pod(self, pod: "Pod", new_size: Millicores) -> None:
        """Adjust a resident pod's reservation (vertical scaling)."""
        if pod.pod_id not in self._pods:
            raise ClusterError(f"pod {pod.pod_id} not on VM {self.vm_id}")
        if new_size <= 0:
            raise ClusterError(f"size must be > 0, got {new_size}")
        delta = new_size - pod.size
        if delta > self.free:
            raise ClusterError(
                f"VM {self.vm_id}: resize by +{delta} mc exceeds free {self.free} mc"
            )
        pod._size = int(new_size)

    # -- co-location ---------------------------------------------------------
    def pods(self) -> list["Pod"]:
        """Resident pods."""
        return list(self._pods.values())

    @property
    def num_pods(self) -> int:
        return len(self._pods)

    def colocated_count(self, function: str, busy_only: bool = True) -> int:
        """Instances of ``function`` on this VM (optionally only busy ones).

        Busy instances are the ones actively contending — the count driving
        the interference model.
        """
        return sum(
            1
            for p in self._pods.values()
            if p.function == function and (p.busy or not busy_only)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualMachine(id={self.vm_id}, pods={self.num_pods}, "
            f"alloc={self.allocated}/{self.capacity})"
        )
