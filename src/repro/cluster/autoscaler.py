"""Horizontal autoscaler for warm pools.

Serverless platforms scale the *number* of instances with request intensity
(paper §I: "horizontal auto-scaling takes care of the number of function
instances based on the real-time request intensity"); Janus adds the
orthogonal vertical dimension. This scaler keeps each function's warm pool
near the recent concurrency so cold starts stay rare at steady load.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import ClusterError
from ..sim.engine import Simulator

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import PoolManager

__all__ = ["HorizontalAutoscaler"]


class HorizontalAutoscaler:
    """Periodic controller adjusting per-function warm-pool targets."""

    def __init__(
        self,
        sim: Simulator,
        pool: "PoolManager",
        interval_ms: float = 1000.0,
        headroom: float = 2.0,
        ewma_alpha: float = 0.5,
        min_warm: int = 1,
    ) -> None:
        if interval_ms <= 0:
            raise ClusterError(f"interval must be > 0, got {interval_ms}")
        if headroom < 1.0:
            raise ClusterError(f"headroom must be >= 1, got {headroom}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ClusterError(f"alpha must be in (0, 1], got {ewma_alpha}")
        if min_warm < 0:
            raise ClusterError(f"min_warm must be >= 0, got {min_warm}")
        self.sim = sim
        self.pool = pool
        self.interval_ms = float(interval_ms)
        self.headroom = float(headroom)
        self.ewma_alpha = float(ewma_alpha)
        self.min_warm = int(min_warm)
        self._demand_ewma: dict[str, float] = {}
        self._in_flight: dict[str, int] = {}
        self.adjustments = 0
        self._running = False

    # -- demand signal (fed by the platform) --------------------------------
    def invocation_started(self, function: str) -> None:
        """Platform notifies that an invocation began."""
        self._in_flight[function] = self._in_flight.get(function, 0) + 1

    def invocation_finished(self, function: str) -> None:
        """Platform notifies that an invocation completed."""
        current = self._in_flight.get(function, 0)
        if current <= 0:
            raise ClusterError(f"no in-flight invocations for {function!r}")
        self._in_flight[function] = current - 1

    def in_flight(self, function: str) -> int:
        """Current concurrent invocations of ``function``."""
        return self._in_flight.get(function, 0)

    # -- control loop ------------------------------------------------------
    def start(self) -> None:
        """Launch the periodic scaling process."""
        if self._running:
            raise ClusterError("autoscaler already running")
        self._running = True
        self.sim.process(self._loop())

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval_ms)
            self._rescale()

    def _rescale(self) -> None:
        # One shared floor (``min_warm``) everywhere: per-function targets
        # and the empty-pool fallback. A higher floor on the per-function
        # branch would pin the warm target above the floor even at zero
        # demand, so idle functions could never scale down and keep-alive
        # sweeps would under-report idle cost.
        targets = []
        for function in self.pool.functions:
            observed = float(self._in_flight.get(function, 0))
            prev = self._demand_ewma.get(function, observed)
            smoothed = self.ewma_alpha * observed + (1 - self.ewma_alpha) * prev
            if smoothed < 1e-6:
                # The geometric decay never reaches exact zero, and ceil()
                # of any positive residue is 1 — snap negligible demand to
                # zero so min_warm=0 (scale to zero) is actually reachable
                # after a function has served traffic.
                smoothed = 0.0
            self._demand_ewma[function] = smoothed
            targets.append(
                max(self.min_warm, int(np.ceil(smoothed * self.headroom)))
            )
        # PoolManager keeps one shared per-function warm target; use the max
        # demand across functions of this pool.
        new_target = max(targets) if targets else self.min_warm
        if new_target != self.pool.warm_pool_size:
            self.pool.warm_pool_size = new_target
            self.adjustments += 1
