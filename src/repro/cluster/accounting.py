"""Cluster resource accounting: allocated millicores over time."""

from __future__ import annotations

import typing as _t

from ..sim.engine import Simulator
from ..sim.monitor import TimeSeries

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .vm import VirtualMachine

__all__ = ["ClusterAccounting"]


class ClusterAccounting:
    """Tracks cluster-wide allocation as a step time series.

    The integral of the series is the millicore-milliseconds consumed — the
    cluster-level counterpart of the paper's per-request CPU metric.
    """

    def __init__(self, sim: Simulator, vms: _t.Sequence["VirtualMachine"]) -> None:
        self.sim = sim
        self.vms = list(vms)
        self.series = TimeSeries()
        self.busy_series = TimeSeries()

    def total_allocated(self) -> int:
        """Millicores reserved by live pods right now."""
        return sum(vm.allocated for vm in self.vms)

    def total_busy(self) -> int:
        """Millicores reserved by pods actively executing right now."""
        return sum(
            p.size for vm in self.vms for p in vm.pods() if p.busy
        )

    def snapshot(self) -> None:
        """Record the current allocation at the current simulation time."""
        self.series.record(self.sim.now, float(self.total_allocated()))
        self.busy_series.record(self.sim.now, float(self.total_busy()))

    def mean_allocated(self) -> float:
        """Time-weighted mean allocated millicores."""
        return self.series.time_weighted_mean(until=self.sim.now)

    def millicore_ms(self) -> float:
        """Integral of allocation over time."""
        return self.series.integral(until=self.sim.now)
