"""The serverless platform facade: DES-backed workflow serving.

Ties the substrate together — VMs, warm pools, interference, accounting and
an optional horizontal autoscaler — and executes workflow requests as
simulation processes. Unlike the analytic backend, interference here emerges
from *actual co-location*: concurrently busy instances of the same function
on one VM slow each other down per the calibrated model, so open-loop load
and batching effects are captured.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, replace

from ..errors import ClusterError
from ..functions.model import InvocationDynamics
from ..policies.base import SizingPolicy
from ..runtime.results import RunResult
from ..sim.engine import Simulator
from ..types import Millicores
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .accounting import ClusterAccounting
from .autoscaler import HorizontalAutoscaler
from .interference import InterferenceModel
from .pool import PoolManager
from .vm import VirtualMachine

__all__ = ["ClusterConfig", "ServerlessPlatform"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster dimensions and policies.

    The default 52-core single node mirrors the paper's serverless testbed
    (Xeon Platinum 8269CY, 52 physical cores) split into 13-core VMs.
    """

    n_vms: int = 4
    vm_capacity_millicores: Millicores = 13_000
    warm_pool_size: int = 2
    #: Idle pods expire after this TTL (None = keep forever).
    keepalive_ms: float | None = None
    autoscale: bool = True
    autoscaler_interval_ms: float = 1000.0
    colocate_same_function: bool = True

    def __post_init__(self) -> None:
        if self.n_vms <= 0:
            raise ClusterError(f"n_vms must be > 0, got {self.n_vms}")
        if self.vm_capacity_millicores <= 0:
            raise ClusterError("vm capacity must be > 0")


class ServerlessPlatform:
    """DES execution backend for serverless workflows."""

    def __init__(
        self,
        workflow: Workflow,
        config: ClusterConfig | None = None,
        interference: InterferenceModel | None = None,
    ) -> None:
        self.workflow = workflow
        self.config = config or ClusterConfig()
        self.sim = Simulator()
        self.vms = [
            VirtualMachine(i, self.config.vm_capacity_millicores)
            for i in range(self.config.n_vms)
        ]
        self.pool = PoolManager(
            self.sim,
            self.vms,
            workflow.functions,
            warm_pool_size=self.config.warm_pool_size,
            colocate_same_function=self.config.colocate_same_function,
            keepalive_ms=self.config.keepalive_ms,
        )
        self.interference = interference or InterferenceModel()
        self.accounting = ClusterAccounting(self.sim, self.vms)
        self.autoscaler = HorizontalAutoscaler(
            self.sim, self.pool, interval_ms=self.config.autoscaler_interval_ms
        )
        if self.config.autoscale:
            self.autoscaler.start()
        self._outcomes: list[RequestOutcome] = []

    # ------------------------------------------------------------------
    def _serve(self, policy: SizingPolicy, request: WorkflowRequest):
        """Simulation process serving one request through the chain."""
        chain = self.workflow.chain
        limits = self.workflow.limits
        policy.bind(self.workflow)
        policy.begin_request(request)
        start_time = self.sim.now
        stages: list[StageRecord] = []
        for fname in chain:
            elapsed = self.sim.now - start_time
            size = limits.clamp(policy.size_for_node(fname, request, elapsed))
            model = self.workflow.model(fname)
            stage_start = self.sim.now
            pod = yield from self.pool.acquire(fname, size)
            cold_ms = self.sim.now - stage_start
            pod.start_invocation()
            self.autoscaler.invocation_started(fname)
            self.accounting.snapshot()
            # Interference from busy same-function neighbours on this VM.
            n_colo = max(1, pod.vm.colocated_count(fname, busy_only=True))
            slowdown = self.interference.slowdown(model.dominant_resource, n_colo)
            dyn = request.dynamics_for(fname)
            dyn_q: InvocationDynamics = replace(
                dyn, interference=dyn.interference * slowdown
            )
            exec_ms = model.execution_time(size, dyn_q, request.concurrency)
            yield self.sim.timeout(exec_ms)
            pod.finish_invocation()
            self.autoscaler.invocation_finished(fname)
            self.pool.release(pod)
            self.accounting.snapshot()
            stages.append(
                StageRecord(
                    function=fname,
                    size=size,
                    start_ms=stage_start,
                    end_ms=self.sim.now,
                    cold_start_ms=cold_ms,
                )
            )
        policy.end_request(request)
        outcome = RequestOutcome(
            request_id=request.request_id,
            arrival_ms=start_time,
            slo_ms=request.slo_ms,
            stages=stages,
        )
        self._outcomes.append(outcome)
        return outcome

    def _submit_at(self, policy: SizingPolicy, request: WorkflowRequest):
        """Process: wait for the arrival time, then serve."""
        delay = request.arrival_ms - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        outcome = yield self.sim.process(self._serve(policy, request))
        return outcome

    # -- public API -------------------------------------------------------
    def run(
        self,
        policy: SizingPolicy,
        requests: _t.Sequence[WorkflowRequest],
    ) -> RunResult:
        """Serve a request stream to completion and collect outcomes."""
        if not requests:
            raise ClusterError("request stream is empty")
        self._outcomes = []
        procs = [
            self.sim.process(self._submit_at(policy, request))
            for request in requests
        ]
        # Run until every request completed (not until heap exhaustion: the
        # autoscaler's periodic control loop never terminates on its own).
        self.sim.run(until=self.sim.all_of(procs))
        # AllOf treats failed child processes as completed; surface the
        # first failure instead of silently dropping its request.
        for proc in procs:
            if proc.processed and not proc.ok:
                raise proc.value
        outcomes = sorted(self._outcomes, key=lambda o: o.request_id)
        return RunResult(
            policy_name=policy.name,
            outcomes=outcomes,
            extras={
                "cold_start_rate": self.pool.cold_start_rate,
                "mean_cluster_allocated": self.accounting.mean_allocated(),
                "idle_millicore_ms": self.pool.idle_millicore_ms,
                "events_processed": self.sim.processed_events,
            },
        )

    def colocation_experiment(
        self,
        function: str,
        n_instances: int,
        size: Millicores,
        samples: int,
        rng,
    ) -> list[float]:
        """Measure mean execution time of ``function`` with ``n_instances``
        busy co-located instances (the Fig. 1c measurement loop).

        Returns per-sample execution times with all instances busy on one VM.
        """
        if n_instances < 1:
            raise ClusterError(f"need >= 1 instance, got {n_instances}")
        model = self.workflow.model(function)
        slowdown = self.interference.slowdown(
            model.dominant_resource, n_instances
        )
        times: list[float] = []
        for _ in range(samples):
            dyn = model.sample_dynamics(rng, interference=slowdown)
            times.append(model.execution_time(size, dyn))
        return times
