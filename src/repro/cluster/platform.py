"""The serverless platform facade: DES-backed workflow serving.

Ties the substrate together — VMs, warm pools, interference, accounting and
an optional horizontal autoscaler — and executes workflow requests as
simulation processes. Unlike the analytic backend, interference here emerges
from *actual co-location*: concurrently busy instances of the same function
on one VM slow each other down per the calibrated model, so open-loop load
and batching effects are captured.

The platform is a first-class execution backend: it satisfies the
:class:`~repro.runtime.registry.Executor` protocol and registers itself as
``"cluster"``, so :class:`~repro.api.Session`, :func:`run_policies` and the
scenario sweep engine can serve any matrix cell on the DES cluster by name.
Run-lifecycle semantics match the analytic executors: every
:meth:`ServerlessPlatform.run` call serves on fresh simulator/pool/
autoscaler/accounting state (requests start at t = 0, counters at zero),
and branching workflows execute *every* DAG node as concurrent simulation
processes joined per node — not just the critical-path chain.
"""

from __future__ import annotations

import numbers as _numbers
import typing as _t
from dataclasses import dataclass, fields as _dc_fields, replace

from ..errors import ClusterError
from ..functions.model import InvocationDynamics
from ..policies.base import SizingPolicy
from ..runtime.registry import register_executor
from ..runtime.results import RunResult, collect_policy_extras
from ..sim.engine import Simulator
from ..sim.process import Process
from ..types import Millicores
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from ..functions.model import Resource
from .accounting import ClusterAccounting
from .autoscaler import HorizontalAutoscaler
from .faults import (
    CLUSTER_FAULT_KINDS,
    RETRY_BACKOFF_MS,
    FaultInjector,
    FaultSpec,
    FaultStats,
    compile_fault_schedule,
)
from .interference import InterferenceModel
from .pod import Pod
from .pool import PoolManager
from .vm import VirtualMachine

__all__ = ["ClusterConfig", "ServerlessPlatform", "cluster_executor"]

#: Fault schedules extend this far past the last arrival so faults keep
#: landing while the tail of the request stream drains.
FAULT_HORIZON_MARGIN_MS = 60_000.0


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster dimensions and policies.

    The default 52-core single node mirrors the paper's serverless testbed
    (Xeon Platinum 8269CY, 52 physical cores) split into 13-core VMs.
    """

    n_vms: int = 4
    vm_capacity_millicores: Millicores = 13_000
    warm_pool_size: int = 2
    #: Idle pods expire after this TTL (None = keep forever).
    keepalive_ms: float | None = None
    autoscale: bool = True
    autoscaler_interval_ms: float = 1000.0
    #: Warm-target floor the autoscaler may decay to (0 = scale to zero).
    min_warm: int = 1
    colocate_same_function: bool = True

    def __post_init__(self) -> None:
        # Count-like fields must be genuine integers at construction: a
        # float n_vms crashes `range()` deep inside a pool worker and a
        # float warm_pool_size silently truncates — fail here instead.
        # numbers.Integral keeps integer-like types (numpy ints) working.
        for fname in ("n_vms", "vm_capacity_millicores", "warm_pool_size",
                      "min_warm"):
            value = getattr(self, fname)
            if not isinstance(value, _numbers.Integral) or isinstance(
                value, bool
            ):
                raise ClusterError(
                    f"{fname} must be an integer, got {value!r}"
                )
        if self.n_vms <= 0:
            raise ClusterError(f"n_vms must be > 0, got {self.n_vms}")
        if self.vm_capacity_millicores <= 0:
            raise ClusterError("vm capacity must be > 0")
        if self.min_warm < 0:
            raise ClusterError(f"min_warm must be >= 0, got {self.min_warm}")

    def with_overrides(self, **overrides: _t.Any) -> "ClusterConfig":
        """Copy with field overrides; unknown field names raise.

        Fields come from ``self``, so subclasses adding knobs stay
        overridable.
        """
        known = {f.name for f in _dc_fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ClusterError(
                f"unknown {type(self).__name__} fields {unknown}; "
                f"known: {sorted(known)}"
            )
        return replace(self, **overrides)


class _ServingPlatform:
    """Shared DES serving core for single- and multi-tenant platforms.

    Subclasses carry a :class:`ClusterConfig` and call
    :meth:`_build_substrate` per run to get fresh simulator / VM / pool /
    accounting / autoscaler state. The core serves one
    :class:`WorkflowRequest` end to end: sequentially along a chain, or —
    for branching workflows — as one simulation process per DAG node, each
    waiting on all its predecessors, so sibling branches genuinely overlap
    on the cluster and contend for pods.
    """

    config: ClusterConfig
    sim: Simulator
    pool: PoolManager
    interference: InterferenceModel
    accounting: ClusterAccounting
    autoscaler: HorizontalAutoscaler
    fault_spec: FaultSpec | None
    fault_seed: int
    fault_stats: FaultStats | None
    fault_injector: FaultInjector | None

    def _init_faults(
        self, faults: FaultSpec | None, fault_seed: int
    ) -> None:
        """Validate and pin the platform's fault configuration.

        ``storm`` never reaches the cluster (the scenario layer rewrites
        the arrival process instead), and ``crash`` on a single-VM fleet
        would leave acquisitions polling a dead cluster forever — both are
        configuration errors, rejected here.
        """
        if faults is not None:
            if faults.kind not in CLUSTER_FAULT_KINDS:
                raise ClusterError(
                    f"fault kind {faults.kind!r} is arrival-side; the "
                    f"cluster platform injects {CLUSTER_FAULT_KINDS}"
                )
            if faults.kind == "crash" and self.config.n_vms < 2:
                raise ClusterError(
                    "crash fault needs n_vms >= 2: with the only VM down "
                    "permanently, pending pods would never place"
                )
        self.fault_spec = faults
        self.fault_seed = int(fault_seed)
        self.fault_stats = None
        self.fault_injector = None

    def _start_faults(
        self, requests: _t.Iterable[WorkflowRequest]
    ) -> None:
        """Compile and launch this run's fault schedule (after substrate).

        The horizon is derived from the (deterministic) request stream, so
        (spec, fault_seed, fleet, stream) -> schedule stays a pure
        function and every backend injects the bit-identical faults.
        """
        self.fault_stats = None
        self.fault_injector = None
        if self.fault_spec is None:
            return
        horizon_ms = (
            max(r.arrival_ms for r in requests) + FAULT_HORIZON_MARGIN_MS
        )
        schedule = compile_fault_schedule(
            self.fault_spec, self.fault_seed, len(self.vms), horizon_ms
        )
        self.fault_stats = FaultStats()
        self.fault_injector = FaultInjector(
            self.sim, self.vms, self.pool, schedule, self.fault_stats
        )
        self.fault_injector.start()

    def _build_substrate(
        self, functions: _t.Mapping[str, _t.Any]
    ) -> None:
        """Fresh simulator/VMs/pool/accounting/autoscaler from the config.

        Called per ``run()`` so back-to-back runs are independent: each
        starts at t = 0 with zeroed cold-start/idle/throttle counters and
        a cold autoscaler EWMA, instead of seeing the previous run's clock
        and cumulative statistics.
        """
        self.sim = Simulator()
        self.vms = [
            VirtualMachine(i, self.config.vm_capacity_millicores)
            for i in range(self.config.n_vms)
        ]
        self.pool = PoolManager(
            self.sim,
            self.vms,
            functions,
            warm_pool_size=self.config.warm_pool_size,
            colocate_same_function=self.config.colocate_same_function,
            keepalive_ms=self.config.keepalive_ms,
        )
        self.accounting = ClusterAccounting(self.sim, self.vms)
        self.autoscaler = HorizontalAutoscaler(
            self.sim, self.pool,
            interval_ms=self.config.autoscaler_interval_ms,
            min_warm=self.config.min_warm,
        )
        if self.config.autoscale:
            self.autoscaler.start()

    # -- autoscaler demand signal -------------------------------------------
    def _invocation_started(self, pool_key: str) -> None:
        self.autoscaler.invocation_started(pool_key)

    def _invocation_finished(self, pool_key: str) -> None:
        self.autoscaler.invocation_finished(pool_key)

    # -- one node ------------------------------------------------------------
    def _node(
        self,
        workflow: Workflow,
        policy: SizingPolicy,
        request: WorkflowRequest,
        fname: str,
        pool_key: str,
        start_time: float,
    ):
        """Process body executing one workflow node on the cluster.

        Sizes at the node's start time with the request's elapsed
        wall-clock — the same information a provider-side adapter has —
        then acquires a pod (paying any cold start), executes under the
        realised co-location slowdown, and releases.
        """
        elapsed = self.sim.now - start_time
        size = workflow.limits.clamp(
            policy.size_for_node(fname, request, elapsed)
        )
        model = workflow.model(fname)
        stage_start = self.sim.now
        cold_ms = 0.0
        while True:
            acquire_start = self.sim.now
            pod = yield from self.pool.acquire(pool_key, size)
            cold_ms += self.sim.now - acquire_start
            pod.start_invocation()
            self._invocation_started(pool_key)
            self.accounting.snapshot()
            # Interference from busy same-function neighbours on this VM —
            # plus, under the contention fault, busy pods of *other*
            # functions contending on the same dominant resource.
            n_colo = max(1, pod.vm.colocated_count(pool_key, busy_only=True))
            if (
                self.fault_spec is not None
                and self.fault_spec.kind == "contention"
            ):
                slowdown = self.interference.cross_slowdown(
                    model.dominant_resource,
                    n_colo,
                    self._cross_contenders(
                        pod, pool_key, model.dominant_resource
                    ),
                    self.fault_spec.scale,
                )
            else:
                slowdown = self.interference.slowdown(
                    model.dominant_resource, n_colo
                )
            dyn = request.dynamics_for(fname)
            dyn_q: InvocationDynamics = replace(
                dyn, interference=dyn.interference * slowdown
            )
            exec_ms = model.execution_time(size, dyn_q, request.concurrency)
            # Transient straggler slowdown of the hosting VM.
            vm_slowdown = pod.vm.slowdown
            if vm_slowdown > 1.0:
                exec_ms *= vm_slowdown
                if self.fault_stats is not None:
                    self.fault_stats.straggler_exposure += 1
            fail_ev = (
                self.fault_injector.watch(pod.vm)
                if self.fault_injector is not None
                else None
            )
            if fail_ev is None:
                yield self.sim.timeout(exec_ms)
            else:
                # Race execution against the VM's next failure. The done
                # timeout stays in the heap if it loses — its late firing
                # only hits the already-triggered AnyOf's no-op callback.
                done = self.sim.timeout(exec_ms)
                yield self.sim.any_of([done, fail_ev])
                if not done.processed:
                    # Preempted mid-invocation: the pod dies with its VM;
                    # back off and re-execute on whatever is still up.
                    self._invocation_finished(pool_key)
                    pod.preempt()
                    pod.vm.evict(pod)
                    self.accounting.snapshot()
                    if self.fault_stats is not None:
                        self.fault_stats.retries += 1
                    yield self.sim.timeout(RETRY_BACKOFF_MS)
                    continue
            pod.finish_invocation()
            self._invocation_finished(pool_key)
            self.pool.release(pod)
            self.accounting.snapshot()
            return StageRecord(
                function=fname,
                size=size,
                start_ms=stage_start,
                end_ms=self.sim.now,
                cold_start_ms=cold_ms,
            )

    def _cross_contenders(
        self, pod: Pod, pool_key: str, resource: Resource
    ) -> int:
        """Busy other-function pods on ``pod``'s VM dominated by ``resource``."""
        count = 0
        for neighbour in pod.vm.pods():
            if neighbour.busy and neighbour.function != pool_key:
                model = self.pool.functions.get(neighbour.function)
                if model is not None and model.dominant_resource is resource:
                    count += 1
        return count

    def _dag_node(
        self,
        workflow: Workflow,
        policy: SizingPolicy,
        request: WorkflowRequest,
        fname: str,
        pool_key: str,
        start_time: float,
        predecessors: _t.Sequence[Process],
        stages: list[StageRecord],
    ):
        """Process: wait for every predecessor node, then execute one node."""
        if predecessors:
            yield self.sim.all_of(list(predecessors))
        record = yield from self._node(
            workflow, policy, request, fname, pool_key, start_time
        )
        stages.append(record)

    # -- one request ---------------------------------------------------------
    def _serve_request(
        self,
        workflow: Workflow,
        policy: SizingPolicy,
        request: WorkflowRequest,
        pool_key: _t.Callable[[str], str] = lambda fname: fname,
    ):
        """Simulation process serving one request through the workflow.

        Chains run node after node; DAGs spawn one child process per node
        joined on its predecessors, and the request completes when every
        node (in particular every sink) has finished.
        """
        policy.bind(workflow)
        policy.begin_request(request)
        start_time = self.sim.now
        stages: list[StageRecord] = []
        if workflow.topology == "chain":
            for fname in workflow.chain:
                record = yield from self._node(
                    workflow, policy, request, fname, pool_key(fname),
                    start_time,
                )
                stages.append(record)
        else:
            # dag.nodes is topological, so predecessors' processes exist by
            # the time a node is spawned; a node's process event doubles as
            # its completion signal.
            node_procs: dict[str, Process] = {}
            for fname in workflow.dag.nodes:
                preds = [
                    node_procs[p] for p in workflow.dag.predecessors(fname)
                ]
                node_procs[fname] = self.sim.process(
                    self._dag_node(
                        workflow, policy, request, fname, pool_key(fname),
                        start_time, preds, stages,
                    )
                )
            yield self.sim.all_of(list(node_procs.values()))
            # AllOf treats failed children as completed; surface the first
            # node failure instead of recording a partial outcome.
            for proc in node_procs.values():
                if not proc.ok:
                    raise proc.value
            stages.sort(key=lambda s: (s.end_ms, s.function))
        policy.end_request(request)
        return RequestOutcome(
            request_id=request.request_id,
            arrival_ms=start_time,
            slo_ms=request.slo_ms,
            stages=stages,
        )

    # -- stream plumbing -----------------------------------------------------
    def _hold_until_arrival(self, request: WorkflowRequest, serve_gen):
        """Process: wait for the arrival time, then serve."""
        delay = request.arrival_ms - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        outcome = yield self.sim.process(serve_gen)
        return outcome

    def _drain(self, procs: _t.Sequence[Process]) -> None:
        """Run until every request completed, surfacing the first failure.

        Runs to the joined event (not heap exhaustion: an autoscaler's
        periodic control loop never terminates on its own). AllOf treats
        failed child processes as completed, so failures are re-raised here
        instead of silently dropping their requests.
        """
        self.sim.run(until=self.sim.all_of(list(procs)))
        for proc in procs:
            if proc.processed and not proc.ok:
                raise proc.value

    def _platform_extras(self) -> dict[str, _t.Any]:
        """Cluster-level diagnostics attached to every result.

        Fault counters appear only when a fault spec is active, so
        fault-free runs keep their result payloads (and cached JSON)
        byte-identical to a build without fault injection.
        """
        extras = {
            "cold_start_rate": self.pool.cold_start_rate,
            "mean_cluster_allocated": self.accounting.mean_allocated(),
            "idle_millicore_ms": self.pool.idle_millicore_ms,
            "throttled": self.pool.throttled,
            "events_processed": self.sim.processed_events,
            "autoscaler_adjustments": self.autoscaler.adjustments,
        }
        if self.fault_stats is not None:
            extras.update(self.fault_stats.as_extras())
        return extras


class ServerlessPlatform(_ServingPlatform):
    """DES execution backend for serverless workflows.

    Satisfies the :class:`~repro.runtime.registry.Executor` protocol;
    registered as ``"cluster"`` (see :func:`cluster_executor`).
    """

    def __init__(
        self,
        workflow: Workflow,
        config: ClusterConfig | None = None,
        interference: InterferenceModel | None = None,
        faults: FaultSpec | None = None,
        fault_seed: int = 0,
    ) -> None:
        self.workflow = workflow
        self.config = config or ClusterConfig()
        self.interference = interference or InterferenceModel()
        self._init_faults(faults, fault_seed)
        self._outcomes: list[RequestOutcome] = []
        self._reset()

    def _reset(self) -> None:
        self._build_substrate(self.workflow.functions)

    # ------------------------------------------------------------------
    def _serve(self, policy: SizingPolicy, request: WorkflowRequest):
        """Simulation process serving one request (chain or full DAG)."""
        outcome = yield from self._serve_request(self.workflow, policy, request)
        self._outcomes.append(outcome)
        return outcome

    # -- public API -------------------------------------------------------
    def run(
        self,
        policy: SizingPolicy,
        requests: _t.Sequence[WorkflowRequest],
    ) -> RunResult:
        """Serve a request stream to completion and collect outcomes.

        Every call serves on fresh platform state, so identical
        ``run(policy, requests)`` calls return identical outcomes and
        extras regardless of what ran before.
        """
        if not requests:
            raise ClusterError("request stream is empty")
        self._reset()
        self._start_faults(requests)
        self._outcomes = []
        procs = [
            self.sim.process(
                self._hold_until_arrival(request, self._serve(policy, request))
            )
            for request in requests
        ]
        self._drain(procs)
        outcomes = sorted(self._outcomes, key=lambda o: o.request_id)
        extras = self._platform_extras()
        extras.update(collect_policy_extras(policy))
        return RunResult(
            policy_name=policy.name,
            outcomes=outcomes,
            extras=extras,
        )

    def colocation_experiment(
        self,
        function: str,
        n_instances: int,
        size: Millicores,
        samples: int,
        rng,
    ) -> list[float]:
        """Measure mean execution time of ``function`` with ``n_instances``
        busy co-located instances (the Fig. 1c measurement loop).

        Returns per-sample execution times with all instances busy on one VM.
        """
        if n_instances < 1:
            raise ClusterError(f"need >= 1 instance, got {n_instances}")
        model = self.workflow.model(function)
        slowdown = self.interference.slowdown(
            model.dominant_resource, n_instances
        )
        times: list[float] = []
        for _ in range(samples):
            dyn = model.sample_dynamics(rng, interference=slowdown)
            times.append(model.execution_time(size, dyn))
        return times


@register_executor("cluster")
def cluster_executor(
    workflow: Workflow,
    *,
    config: ClusterConfig | None = None,
    interference: InterferenceModel | None = None,
    faults: FaultSpec | None = None,
    fault_seed: int = 0,
    **overrides: _t.Any,
) -> ServerlessPlatform:
    """The ``"cluster"`` executor factory: a DES platform for ``workflow``.

    Accepts a full :class:`ClusterConfig` and/or individual config fields
    as keyword overrides, so callers can write
    ``get_executor("cluster", wf, n_vms=2, autoscale=False)`` or pass
    ``executor_kwargs={"config": ClusterConfig(...)}`` through a
    :class:`~repro.api.Session`. ``faults`` + ``fault_seed`` install a
    deterministic fault schedule (see :mod:`repro.cluster.faults`).
    """
    if overrides:
        base = config or ClusterConfig()
        config = base.with_overrides(**overrides)
    return ServerlessPlatform(
        workflow,
        config=config,
        interference=interference,
        faults=faults,
        fault_seed=fault_seed,
    )
