"""Co-location interference model (paper §II-B, Fig. 1c).

Commercial platforms pack instances of the *same* function onto shared VMs
(65% of Alibaba Function Compute VMs host a single function [35]), which
contends on the function's dominant resource. The paper measures slowdowns
up to 8.1x at six co-located instances, ordered
CPU < memory < IO < network.

We model the slowdown as ``1 + a_r * (n - 1)^b_r`` for ``n`` co-located
instances of dominant resource ``r``. Coefficients are calibrated so that
``n = 6`` lands near the paper's measured endpoints (~1.6x CPU, ~3.5x
memory, ~5.5x IO, ~8.1x network).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as _np

from ..errors import ClusterError
from ..functions.model import Resource

__all__ = ["InterferenceModel", "DEFAULT_COEFFICIENTS"]


@dataclass(frozen=True)
class _Coeff:
    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a < 0 or self.b <= 0:
            raise ClusterError(f"invalid interference coefficients a={self.a} b={self.b}")


DEFAULT_COEFFICIENTS: dict[Resource, _Coeff] = {
    Resource.CPU: _Coeff(a=0.12, b=1.0),  # 1.60x at n=6
    Resource.MEMORY: _Coeff(a=0.50, b=1.0),  # 3.50x at n=6
    Resource.IO: _Coeff(a=0.90, b=1.0),  # 5.50x at n=6
    Resource.NETWORK: _Coeff(a=1.42, b=1.0),  # 8.10x at n=6
}


@dataclass(frozen=True)
class InterferenceModel:
    """Maps (dominant resource, co-located count) to a slowdown factor."""

    coefficients: dict[Resource, _Coeff] = field(
        default_factory=lambda: dict(DEFAULT_COEFFICIENTS)
    )

    def slowdown(self, resource: Resource, colocated: int) -> float:
        """Multiplicative slowdown for ``colocated`` same-function instances.

        ``colocated`` counts all instances on the VM including the one being
        measured; 1 (alone) means no interference.
        """
        if colocated < 1:
            raise ClusterError(f"colocated count must be >= 1, got {colocated}")
        try:
            c = self.coefficients[resource]
        except KeyError:
            raise ClusterError(f"no interference coefficients for {resource}")
        return 1.0 + c.a * float(colocated - 1) ** c.b

    def cross_slowdown(
        self,
        resource: Resource,
        same: int,
        other: int,
        scale: float = 0.5,
    ) -> float:
        """Slowdown with cross-function neighbours on the same resource.

        Beyond the paper's same-function packing, co-located pods of
        *different* functions whose dominant resource matches also contend
        — just less tightly (they rarely hit the same phase). ``same``
        counts same-function instances including the one measured,
        ``other`` counts busy other-function instances dominated by the
        same resource, and ``scale`` weighs one such neighbour against a
        same-function one: the effective count becomes
        ``same + scale * other``, fed through the calibrated curve. With
        ``other = 0`` this reduces exactly to :meth:`slowdown`.
        """
        if same < 1:
            raise ClusterError(f"same-function count must be >= 1, got {same}")
        if other < 0:
            raise ClusterError(f"other-function count must be >= 0, got {other}")
        if scale < 0:
            raise ClusterError(f"contention scale must be >= 0, got {scale}")
        try:
            c = self.coefficients[resource]
        except KeyError:
            raise ClusterError(f"no interference coefficients for {resource}")
        effective = float(same) + scale * float(other) - 1.0
        return 1.0 + c.a * effective**c.b

    def curve(self, resource: Resource, max_colocated: int = 6) -> list[float]:
        """Slowdowns for 1..max_colocated instances (Fig. 1c series)."""
        return [self.slowdown(resource, n) for n in range(1, max_colocated + 1)]

    def profiling_sampler(
        self,
        resource: Resource,
        colocation_probs: _t.Mapping[int, float],
    ):
        """Sampler of interference factors for platform-aware profiling.

        The paper's developer profiles functions *on the serverless
        platform*, so the measured distributions already include typical
        co-location effects. ``colocation_probs`` maps co-located-instance
        counts to probabilities (e.g. ``{1: 0.5, 2: 0.3, 3: 0.2}``); the
        returned callable plugs into
        :class:`~repro.profiling.profiler.Profiler` as its interference
        source.
        """
        counts = sorted(colocation_probs)
        probs = _np.asarray([colocation_probs[c] for c in counts], dtype=float)
        if counts and counts[0] < 1:
            raise ClusterError("co-location counts must be >= 1")
        if probs.size == 0 or not _np.isclose(probs.sum(), 1.0):
            raise ClusterError(
                f"co-location probabilities must sum to 1, got {probs.sum()}"
            )
        factors = _np.asarray(
            [self.slowdown(resource, c) for c in counts], dtype=float
        )

        def sample(rng: _np.random.Generator, n: int) -> _np.ndarray:
            idx = rng.choice(len(counts), size=n, p=probs)
            return factors[idx]

        return sample
