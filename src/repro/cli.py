"""Command-line interface: paper artifacts plus the developer workflow.

Usage::

    janus-repro list
    janus-repro run fig5 --requests 1000
    janus-repro run-all --requests 400 --samples 1000
    janus-repro sweep --workflows IA,VA --arrivals constant,poisson@8 --jobs 4
    janus-repro sweep --backend workstealing --cache-dir .sweep-cache --progress
    janus-repro trace generate --workflows IA,VA --n 2000 --out day.jsonl
    janus-repro trace summarize day.jsonl
    janus-repro sweep --workflows IA,VA --traces day.jsonl
    janus-repro serve --source diurnal@8 --max-requests 2000
    janus-repro serve --source replay@day.jsonl --max-requests 5000 \
        --snapshot-out snapshot.json --event-log events.jsonl
    janus-repro profile IA --out ia-profiles.json
    janus-repro synthesize ia-profiles.json --slo 3000 --out ia-hints.json
    janus-repro inspect ia-hints.json
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time
import typing as _t

from .experiments.registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["main", "build_parser"]

#: CLI knob -> the run() parameter it maps to. Whether an experiment
#: supports a knob is discovered from its run() signature, so new
#: experiments get the flags for free.
_KNOB_PARAMS = {
    "requests": "n_requests",
    "samples": "samples",
    "seed": "seed",
}


def _accepts(run: _t.Callable[..., _t.Any], param: str) -> bool:
    """True when ``run`` takes ``param`` (directly or via ``**kwargs``)."""
    sig = inspect.signature(run)
    if param in sig.parameters:
        kind = sig.parameters[param].kind
        return kind not in (
            inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.VAR_POSITIONAL
        )
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in sig.parameters.values()
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="janus-repro",
        description="Reproduce the Janus paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_p.add_argument("--requests", type=int, default=None,
                       help="requests per run (experiment default otherwise)")
    run_p.add_argument("--samples", type=int, default=None,
                       help="profiling samples per grid point")
    run_p.add_argument("--seed", type=int, default=None)

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--requests", type=int, default=None)
    all_p.add_argument("--samples", type=int, default=None)
    all_p.add_argument("--seed", type=int, default=None)

    sweep_p = sub.add_parser(
        "sweep", help="run a scenario-matrix sweep on a process pool"
    )
    sweep_p.add_argument(
        "--workflows", default="IA,VA",
        help="comma-separated scenario workflow names (default: IA,VA)")
    sweep_p.add_argument(
        "--arrivals", default="constant,poisson@8,burst@8,azure@8",
        help="comma-separated arrival tokens: poisson@RATE, burst@RATE, "
             "azure@RATE, diurnal@RATE (requests/s), "
             "constant[@INTERVAL_MS] (back-to-back when no interval is "
             "given), or replay@TRACE_FILE")
    sweep_p.add_argument(
        "--traces", default=None,
        help="comma-separated trace files appended to the arrivals axis "
             "as replay cells (see 'janus-repro trace generate'); each "
             "workflow replays its own sub-stream of an attributed trace")
    sweep_p.add_argument(
        "--slo-scales", default="1.0,1.25",
        help="comma-separated multipliers on each workflow's default SLO")
    sweep_p.add_argument(
        "--tenants", default="1,2",
        help="comma-separated tenant counts (streams merged by arrival)")
    sweep_p.add_argument(
        "--policies", default=None,
        help="comma-separated policy names "
             "(default: Optimal,ORION,GrandSLAM,Janus)")
    sweep_p.add_argument("--requests", type=int, default=None,
                         help="requests per tenant per cell (default 200)")
    sweep_p.add_argument("--samples", type=int, default=None,
                         help="profiling samples per grid point (default 1000)")
    sweep_p.add_argument("--seed", type=int, default=None,
                         help="master seed every cell derives from")
    sweep_p.add_argument("--jobs", type=int, default=None,
                         help="process-pool workers (1 = serial; "
                              "default: CPU count)")
    sweep_p.add_argument(
        "--backend",
        choices=["serial", "pool", "workstealing", "distributed"],
        default=None,
        help="execution backend: 'serial' (in-process), 'pool' (static "
             "process-pool map), 'workstealing' (per-cell submission, "
             "most expensive cells dispatched first), 'distributed' "
             "(multi-host coordinator over --hosts with cross-host "
             "stealing and cell-cache resume). Default: serial when "
             "--jobs 1, pool otherwise. Results are bit-identical "
             "across backends")
    sweep_p.add_argument(
        "--hosts", default=None,
        help="distributed fleet as comma-separated host[:nproc] specs, "
             "e.g. 'local:4' or 'local:2,big-box:8,gpu-box'. 'local' "
             "socket-launches workers on this machine; anything else is "
             "launched via 'ssh HOST python3 -m repro.scenarios.worker'. "
             "Needs --backend distributed (default there: local:2)")
    sweep_p.add_argument(
        "--auth-token", default=None, dest="auth_token",
        help="shared fabric secret: the coordinator HMAC-challenges every "
             "connecting worker and rejects peers that cannot answer "
             "(default: $JANUS_FABRIC_TOKEN; needs --backend distributed)")
    sweep_p.add_argument(
        "--cache-mode", choices=["shared", "protocol"], default=None,
        dest="cache_mode",
        help="how distributed workers reach the cell cache: 'shared' "
             "(workers open --cache-dir directly — same filesystem, the "
             "default) or 'protocol' (GET/PUT over the task socket — no "
             "shared filesystem needed). Needs --backend distributed "
             "and --cache-dir")
    sweep_p.add_argument(
        "--cache-dir", default=os.environ.get("JANUS_SWEEP_CACHE"),
        help="content-addressed cache directory: per-cell results plus "
             "persistent DP/hints tables, so repeated or overlapping "
             "sweeps skip already-computed work (default: "
             "$JANUS_SWEEP_CACHE when set, else no caching)")
    sweep_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the cell/DP/hints caches even when --cache-dir or "
             "$JANUS_SWEEP_CACHE is set")
    sweep_p.add_argument(
        "--progress", action="store_true",
        help="print one completion line per cell (id, wall time or "
             "cache hit)")
    sweep_p.add_argument("--baseline", default=None,
                         help="normalisation baseline policy (default: "
                              "Optimal when present)")
    sweep_p.add_argument(
        "--executor", default=None,
        help="comma-separated backend axis, e.g. 'cluster' or "
             "'analytic,cluster' ('auto' selects from the workflow "
             "topology, the default)")
    sweep_p.add_argument(
        "--cluster-config", default=None, dest="cluster_config",
        help="cluster knobs for 'cluster' cells as field=value pairs, "
             "e.g. 'n_vms=2,warm_pool_size=4,autoscale=false,"
             "keepalive_ms=500'")
    sweep_p.add_argument(
        "--faults", default=None,
        help="comma-separated fault-injection axis entries: 'none' (no "
             "faults, keeps fault-free cells' cache keys), "
             "'preempt@RATE_PER_MIN[:RECOVERY_MS]', 'crash@AT_MS', "
             "'storm@MULTIPLIER[:WINDOW_FRACTION]', "
             "'straggler@FRACTION:SLOWDOWN', 'contention[@SCALE]', or "
             "'region-failover[@OUTAGE_MS]' (needs --fleet). "
             "Cluster-side kinds need --executor cluster; storm works on "
             "any executor (it reshapes arrivals into a flash crowd)")
    sweep_p.add_argument(
        "--fleet", default=None,
        help="evaluate every cell on a multi-region fleet: comma-separated "
             "key=value pairs, e.g. 'regions=3,routing=spillover,"
             "capacity=8,rtt=60' or 'regions=eu:us:ap,routing="
             "latency-aware,weights=2:1:1' (routing: home-region, "
             "weighted, latency-aware, spillover)")
    sweep_p.add_argument(
        "--streaming", action="store_true",
        help="serve every cell through bounded-memory streaming "
             "estimators (P2 percentiles) instead of retained outcome "
             "arrays — for very large --requests (analytic cells only)")
    sweep_p.add_argument("--csv", default=None, help="write per-cell CSV here")
    sweep_p.add_argument("--json", default=None,
                         help="write the full JSON report here")

    serve_p = sub.add_parser(
        "serve",
        help="run the always-on serving loop: live sizing, streaming "
             "metrics, online adaptation",
    )
    serve_p.add_argument(
        "--source", default="diurnal@8",
        help="arrival source token as for sweep --arrivals "
             "(default: diurnal@8)")
    serve_p.add_argument("--workflow", default="IA",
                         help="scenario workflow to serve (default: IA)")
    serve_p.add_argument("--policy", default="Janus",
                         help="sizing policy (default: Janus)")
    serve_p.add_argument("--max-requests", type=int, default=None,
                         dest="max_requests",
                         help="stop after ingesting N requests")
    serve_p.add_argument("--max-seconds", type=float, default=None,
                         dest="max_seconds",
                         help="stop after S wall-clock seconds")
    serve_p.add_argument(
        "--time-scale", type=float, default=0.0, dest="time_scale",
        help="wall-clock pacing: 0 = unpaced (as fast as possible, the "
             "default), 1 = real time, 60 = a trace-minute per second")
    serve_p.add_argument(
        "--metrics-every", type=int, default=500, dest="metrics_every",
        help="emit a metrics snapshot event every N completions "
             "(default 500)")
    serve_p.add_argument("--snapshot-out", default=None, dest="snapshot_out",
                         help="write the final metrics snapshot JSON here")
    serve_p.add_argument("--event-log", default=None, dest="event_log",
                         help="append JSONL events (arrivals, decisions, "
                              "swaps, snapshots) here")
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--samples", type=int, default=2000,
                         help="profiling samples per grid point")
    serve_p.add_argument("--slo-scale", type=float, default=1.0,
                         dest="slo_scale",
                         help="multiplier on the workflow's default SLO")
    serve_p.add_argument(
        "--no-adapt", action="store_true",
        help="disable online adaptation (observe misses, never "
             "re-synthesize)")
    serve_p.add_argument(
        "--miss-threshold", type=float, default=0.01, dest="miss_threshold",
        help="windowed hint-miss rate that triggers re-synthesis "
             "(default 0.01)")
    serve_p.add_argument(
        "--miss-window", type=int, default=200, dest="miss_window",
        help="sliding window length for the miss rate (default 200)")
    serve_p.add_argument(
        "--faults", default=None,
        help="arrival-side fault injection: 'storm@MULTIPLIER"
             "[:WINDOW_FRACTION]' superimposes a flash crowd on --source; "
             "'region-failover[@OUTAGE_MS]' darkens one region (needs "
             "--fleet). Cluster-side kinds need 'sweep --executor "
             "cluster'")
    serve_p.add_argument(
        "--fleet", default=None,
        help="serve a multi-region fleet: same spec grammar as sweep "
             "--fleet; per-region phase-offset sources merge into one "
             "routed stream with fleet counters in every snapshot")
    serve_p.add_argument(
        "--drift", default=None,
        help="force workload drift for adaptation demos: comma-separated "
             "AFTER:SCALE pairs, e.g. '500:4.0' multiplies working sets "
             "by 4 from request 500 on")

    trace_p = sub.add_parser(
        "trace", help="generate, summarize or replay workload trace files"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    gen_p = trace_sub.add_parser(
        "generate",
        help="synthesise a trace: one arrival process, Zipf workflow "
             "popularity",
    )
    gen_p.add_argument("--out", required=True,
                       help="output path (.csv for CSV, JSONL otherwise)")
    gen_p.add_argument("--workflows", default="IA,VA",
                       help="comma-separated workflow names in popularity "
                            "rank order (default: IA,VA)")
    gen_p.add_argument("--n", type=int, default=1000, dest="n_records",
                       help="number of invocation records (default 1000)")
    gen_p.add_argument("--arrival", default="diurnal@8",
                       help="arrival token as for sweep --arrivals "
                            "(default: diurnal@8)")
    gen_p.add_argument("--amplitude", type=float, default=None,
                       help="diurnal relative swing in [0, 1] "
                            "(diurnal arrivals only)")
    gen_p.add_argument("--period-s", type=float, default=None,
                       dest="period_s",
                       help="diurnal cycle length in seconds "
                            "(diurnal arrivals only)")
    gen_p.add_argument("--zipf", type=float, default=0.9,
                       help="Zipf popularity exponent over the workflows "
                            "(default 0.9)")
    gen_p.add_argument("--seed", type=int, default=2025)
    gen_p.add_argument("--name", default=None,
                       help="trace name stored in the header "
                            "(default: output basename)")

    sum_p = trace_sub.add_parser(
        "summarize", help="print a trace file's header and workload shape"
    )
    sum_p.add_argument("trace", help="trace file from 'trace generate'")

    rep_p = trace_sub.add_parser(
        "replay",
        help="replay a trace into an arrival stream and summarise it",
    )
    rep_p.add_argument("trace", help="trace file to replay")
    rep_p.add_argument("--workflow", default=None,
                       help="replay this workflow's sub-stream through "
                            "full request generation (default: the raw "
                            "arrival stream)")
    rep_p.add_argument("--requests", type=int, default=None,
                       help="stream length (default: every matching "
                            "record; longer wraps around)")

    prof_p = sub.add_parser(
        "profile", help="profile a catalog workflow to a JSON file"
    )
    prof_p.add_argument("workflow", choices=["IA", "VA"])
    prof_p.add_argument("--out", required=True, help="output JSON path")
    prof_p.add_argument("--samples", type=int, default=2000)
    prof_p.add_argument("--seed", type=int, default=2025)
    prof_p.add_argument("--concurrency", type=int, default=1,
                        help="profile batch sizes 1..N (IA only)")

    synth_p = sub.add_parser(
        "synthesize", help="synthesize hint tables from saved profiles"
    )
    synth_p.add_argument("profiles", help="profile JSON from 'profile'")
    synth_p.add_argument("--out", required=True, help="output hints JSON path")
    synth_p.add_argument("--chain", default=None,
                         help="comma-separated function order "
                              "(default: profile order)")
    synth_p.add_argument("--tmin", type=int, default=None)
    synth_p.add_argument("--tmax", type=int, default=None)
    synth_p.add_argument("--weight", type=float, default=1.0)
    synth_p.add_argument("--concurrency", type=int, default=1)
    synth_p.add_argument(
        "--exploration", choices=["none", "head", "head+next"], default="head"
    )

    insp_p = sub.add_parser("inspect", help="summarise a hints JSON file")
    insp_p.add_argument("hints", help="hints JSON from 'synthesize'")
    return parser


def _params_for(exp_id: str, args: argparse.Namespace) -> dict[str, _t.Any]:
    run = EXPERIMENTS[exp_id].run
    params: dict[str, _t.Any] = {}
    for knob, param in _KNOB_PARAMS.items():
        value = getattr(args, knob, None)
        if value is not None and _accepts(run, param):
            params[param] = value
    return params


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id, desc in list_experiments():
            print(f"{exp_id:20s} {desc}")
        return 0
    if args.command == "run":
        t0 = time.perf_counter()
        print(run_experiment(args.experiment, **_params_for(args.experiment, args)))
        print(f"\n[{args.experiment} took {time.perf_counter() - t0:.1f} s]")
        return 0
    if args.command == "run-all":
        for exp_id in EXPERIMENTS:
            t0 = time.perf_counter()
            print("=" * 72)
            print(run_experiment(exp_id, **_params_for(exp_id, args)))
            print(f"\n[{exp_id} took {time.perf_counter() - t0:.1f} s]")
        return 0
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "synthesize":
        return _cmd_synthesize(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    return 2  # pragma: no cover - argparse enforces choices


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .scenarios import (
        ScenarioMatrix,
        SweepRunner,
        parse_arrival,
        parse_cluster_config,
        parse_fault,
        parse_fleet,
    )

    def _split(text: str) -> list[str]:
        return [part.strip() for part in text.split(",") if part.strip()]

    matrix_kwargs: dict[str, _t.Any] = {
        "workflows": tuple(_split(args.workflows)),
        "arrivals": tuple(parse_arrival(tok) for tok in _split(args.arrivals)),
        "slo_scales": tuple(float(s) for s in _split(args.slo_scales)),
        "tenant_counts": tuple(int(t) for t in _split(args.tenants)),
        "baseline": args.baseline,
    }
    if args.policies:
        matrix_kwargs["policies"] = tuple(_split(args.policies))
    if args.executor:
        matrix_kwargs["executors"] = tuple(
            None if name == "auto" else name
            for name in _split(args.executor)
        )
    if args.cluster_config is not None:
        matrix_kwargs["cluster"] = parse_cluster_config(args.cluster_config)
    if args.traces:
        matrix_kwargs["traces"] = tuple(_split(args.traces))
    if args.faults:
        matrix_kwargs["faults"] = tuple(
            None if token == "none" else parse_fault(token)
            for token in _split(args.faults)
        )
    if args.streaming:
        matrix_kwargs["streaming"] = True
    if args.fleet:
        matrix_kwargs["fleets"] = (parse_fleet(args.fleet),)
    # Same knob-introspection contract as `run`: a scale flag reaches the
    # matrix only if its constructor takes the parameter.
    for knob, param in _KNOB_PARAMS.items():
        value = getattr(args, knob, None)
        if value is not None and _accepts(ScenarioMatrix.__init__, param):
            matrix_kwargs[param] = value
    matrix = ScenarioMatrix(**matrix_kwargs)
    print(f"sweeping {len(matrix)} scenario cells "
          f"({len(matrix.policies)} policies each)...")
    backend_options: dict[str, _t.Any] = {}
    if args.backend == "distributed":
        backend_options["hosts"] = args.hosts or "local:2"
        if args.cache_mode:
            backend_options["cache_mode"] = args.cache_mode
        if args.auth_token:
            backend_options["auth_token"] = args.auth_token
    elif args.hosts or args.cache_mode or args.auth_token:
        flag = (
            "--hosts"
            if args.hosts
            else "--cache-mode" if args.cache_mode else "--auth-token"
        )
        raise SystemExit(f"{flag} requires --backend distributed")
    runner = SweepRunner(
        max_workers=args.jobs,
        backend=args.backend,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=print if args.progress else None,
        backend_options=backend_options or None,
    )
    report = runner.run(matrix)
    print(report.render())
    if args.csv:
        report.write_csv(args.csv)
        print(f"per-cell CSV -> {args.csv}")
    if args.json:
        report.write_json(args.json)
        print(f"JSON report -> {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .scenarios.matrix import parse_arrival, parse_fault, parse_fleet
    from .serving import ServingConfig, run_service

    schedule: tuple[tuple[int, float], ...] = ()
    if args.drift:
        pairs = []
        for token in args.drift.split(","):
            token = token.strip()
            if not token:
                continue
            after_s, _, scale_s = token.partition(":")
            try:
                pairs.append((int(after_s), float(scale_s)))
            except ValueError:
                raise SystemExit(
                    f"--drift wants AFTER:SCALE pairs, got {token!r}"
                ) from None
        schedule = tuple(pairs)
    config = ServingConfig(
        workflow=args.workflow,
        policy=args.policy,
        source=parse_arrival(args.source),
        seed=args.seed,
        samples=args.samples,
        slo_scale=args.slo_scale,
        max_requests=args.max_requests,
        max_seconds=args.max_seconds,
        time_scale=args.time_scale,
        metrics_every=args.metrics_every,
        miss_threshold=args.miss_threshold,
        miss_window=args.miss_window,
        adapt=not args.no_adapt,
        workset_schedule=schedule,
        event_log=args.event_log,
        faults=parse_fault(args.faults) if args.faults else None,
        fleet=parse_fleet(args.fleet) if args.fleet else None,
    )
    fleet_note = (
        f", fleet {config.fleet.label}" if config.fleet is not None else ""
    )
    print(
        f"serving {config.workflow} under {config.policy} "
        f"({config.source.label}, seed {config.seed}{fleet_note})..."
    )
    report = run_service(config)
    snap = report.snapshot
    rate = report.completed / report.wall_seconds if report.wall_seconds else 0
    print(
        f"served {report.completed}/{report.arrivals} requests "
        f"({report.dropped} dropped) in {report.wall_seconds:.2f} s "
        f"(~{rate:.0f} req/s), {report.swaps} hint swap(s)"
    )
    print(
        f"  latency  P50 {snap['p50']:.1f} ms   "
        f"P95 {snap['p95']:.1f} ms   P99 {snap['p99']:.1f} ms"
    )
    print(
        f"  SLO      {snap['slo_attainment']:.1%} attained "
        f"(windowed {snap['slo_attainment_windowed']:.1%})"
    )
    print(
        f"  cost     {snap['mean_allocated_millicores']:.0f} mc/request "
        f"(total {snap['total_millicore_cost']:.0f})   "
        f"miss rate {snap['miss_rate']:.3f}"
    )
    if config.fleet is not None and "fleet_remote_fraction" in snap:
        print(
            f"  fleet    {snap['fleet_spillovers']:.0f} spillover(s), "
            f"{snap['fleet_failovers']:.0f} failover(s), "
            f"{snap['fleet_remote_fraction']:.1%} served remotely "
            f"(+{snap['fleet_rtt_penalty_ms']:.1f} ms mean RTT)"
        )
    if args.snapshot_out:
        with open(args.snapshot_out, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"snapshot JSON -> {args.snapshot_out}")
    if args.event_log:
        print(f"event log -> {args.event_log}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "generate":
        return _cmd_trace_generate(args)
    if args.trace_command == "summarize":
        return _cmd_trace_summarize(args)
    return _cmd_trace_replay(args)


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    import dataclasses

    from .scenarios.matrix import parse_arrival
    from .traces.trace_file import generate_workload_trace, save_trace

    arrival = parse_arrival(args.arrival)
    overrides = {
        knob: value
        for knob, value in (
            ("amplitude", args.amplitude), ("period_s", args.period_s)
        )
        if value is not None
    }
    if overrides:
        if arrival.kind != "diurnal":
            raise SystemExit(
                f"--amplitude/--period-s shape diurnal arrivals only "
                f"(got --arrival {args.arrival!r})"
            )
        arrival = dataclasses.replace(arrival, **overrides)
    workflows = [w.strip() for w in args.workflows.split(",") if w.strip()]
    name = args.name or os.path.splitext(os.path.basename(args.out))[0]
    trace = generate_workload_trace(
        workflows, args.n_records, arrival=arrival, zipf_s=args.zipf,
        seed=args.seed, name=name,
    )
    digest = save_trace(trace, args.out)
    shares = ", ".join(
        f"{wf} {count}" for wf, count in trace.counts_by_workflow().items()
    )
    print(
        f"generated {trace.n_records} records over {trace.span_ms / 1000:.1f} s "
        f"({arrival.label}; {shares}) -> {args.out}"
    )
    print(f"content digest: {digest}")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .traces.trace_file import load_trace

    trace = load_trace(args.trace)
    span_s = trace.span_ms / 1000.0
    rate = trace.n_records / span_s if span_s > 0 else float("inf")
    print(f"trace:     {trace.name} ({args.trace})")
    print(f"records:   {trace.n_records} over {span_s:.1f} s "
          f"(~{rate:.1f} req/s)")
    print(f"digest:    {trace.digest()}")
    if trace.workflows:
        counts = trace.counts_by_workflow()
        for wf in trace.workflows:
            share = counts[wf] / trace.n_records
            print(f"  {wf:12s} {counts[wf]:8d} records ({share:.1%})")
    else:
        print("  (no per-record workflow attribution)")
    if trace.durations_ms is not None:
        import numpy as np

        p50, p99 = np.percentile(trace.durations_ms, [50, 99])
        print(f"durations: P50 {p50:.1f} ms, P99 {p99:.1f} ms")
    if trace.metadata:
        print(f"metadata:  {json.dumps(trace.metadata, sort_keys=True)}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from .traces.trace_file import load_trace, replay_arrivals

    trace = load_trace(args.trace)
    if args.workflow is not None:
        # Full request generation for a catalog workflow: exactly what a
        # sweep cell replaying this trace would serve.
        from .scenarios.registry import scenario_workflow
        from .traces.workload import ArrivalSpec, WorkloadConfig
        from .traces.workload import generate_requests

        workflow = scenario_workflow(args.workflow)
        n = args.requests or trace.arrivals_for(args.workflow).size
        requests = generate_requests(
            workflow,
            WorkloadConfig(
                n_requests=int(n),
                arrival=ArrivalSpec(kind="replay", trace=args.trace),
            ),
        )
        span_s = (requests[-1].arrival_ms - requests[0].arrival_ms) / 1000.0
        rate = len(requests) / span_s if span_s > 0 else float("inf")
        print(
            f"replayed {len(requests)} {workflow.name} requests over "
            f"{span_s:.1f} s (~{rate:.1f} req/s), SLO {requests[0].slo_ms:g} ms"
        )
    else:
        arrivals = replay_arrivals(trace, args.requests or trace.n_records)
        span_s = float(arrivals[-1] - arrivals[0]) / 1000.0
        rate = arrivals.size / span_s if span_s > 0 else float("inf")
        print(
            f"replayed {arrivals.size} arrivals over {span_s:.1f} s "
            f"(~{rate:.1f} req/s)"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profiling.io import save_profile_set
    from .profiling.profiler import profile_workflow
    from .workflow.catalog import intelligent_assistant, video_analytics

    if args.workflow == "IA":
        wf = intelligent_assistant(concurrency=args.concurrency)
    else:
        wf = video_analytics()
    profiles = profile_workflow(
        wf, seed=args.seed, samples=args.samples,
        concurrencies=tuple(range(1, args.concurrency + 1)),
    )
    save_profile_set(profiles, args.out)
    print(f"profiled {wf.name} ({', '.join(profiles.functions())}) "
          f"-> {args.out}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from .profiling.io import load_profile_set
    from .synthesis.budget import BudgetRange
    from .synthesis.generator import HeadExploration, synthesize_hints

    profiles = load_profile_set(args.profiles)
    chain = (
        [c.strip() for c in args.chain.split(",")]
        if args.chain
        else profiles.functions()
    )
    budget = None
    if args.tmin is not None and args.tmax is not None:
        budget = BudgetRange(args.tmin, args.tmax)
    exploration = {
        "none": HeadExploration.NONE,
        "head": HeadExploration.HEAD_ONLY,
        "head+next": HeadExploration.HEAD_PLUS_NEXT,
    }[args.exploration]
    hints = synthesize_hints(
        profiles, chain, budget=budget, concurrency=args.concurrency,
        weight=args.weight, exploration=exploration,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(hints.to_json())
    print(
        f"synthesized {hints.condensed_hint_count} rows "
        f"({hints.compression_ratio:.1%} compressed) "
        f"in {hints.synthesis_seconds:.2f} s -> {args.out}"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .synthesis.hints import WorkflowHints

    with open(args.hints, "r", encoding="utf-8") as fh:
        hints = WorkflowHints.from_json(fh.read())
    print(f"workflow:    {hints.workflow_name}")
    print(f"concurrency: {hints.concurrency}   weight: {hints.weight:g}")
    print(f"rows:        {hints.condensed_hint_count} "
          f"(raw {hints.raw_hint_count}, "
          f"{hints.compression_ratio:.1%} compressed)")
    print(f"memory:      {hints.memory_bytes() / 1024:.1f} KiB")
    for table in hints.tables:
        print(
            f"  stage {table.suffix_index} ({table.head_function}): "
            f"{len(table)} rows covering "
            f"[{table.tmin_ms}, {table.tmax_ms}] ms"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
